"""Optimistic concurrency control: snapshot-isolation writer path.

An OCC transaction (``engine.session(isolation="occ")``) runs in three
phases, after Kung-Robinson shaped over the MVCC substrate of
:mod:`repro.storage.versions`:

read phase
    Every read resolves against a snapshot pinned at transaction
    begin, exactly like a read-only MVCC session — zero locks, no
    IS/S traffic at all.  The snapshot *tracks* its read set (pages
    and root slots, first touch each) so validation can replay it.

write buffering
    Writes never touch the tree during the transaction.  They are
    buffered as logical operations in an :class:`OccContext` — a
    private write set with a read-your-own-writes overlay — and each
    buffered write first performs a snapshot read of its key, pulling
    the key's leaf path into the read set.  Page-grain read-set
    validation therefore subsumes write-write conflict detection.

validation + install
    At commit, the read set is validated against the version stamps:
    any page or root slot with a committed version in ``(pin_ts,
    now]`` aborts the transaction (:class:`OCCConflict`).  A valid
    transaction unpins its snapshot, then replays the write set into
    a fresh lock-managed scheme context under the lock manager's
    ``commit_scope`` — a short burst of X locks sized by the write
    set — and runs the engine's ordinary commit protocol (slot-header
    redo log, flush, fence, ≤8B mark; group-commit epochs included).

Validation is sound because the pinned snapshot itself keeps
``VersionManager.capture_active`` true for the transaction's whole
lifetime: every concurrent commit stamps the pages and roots it
publishes, so a stale read cannot slip through unstamped.  The
cooperative scheduler makes validate-then-install atomic — no other
session runs between the two.

After ``SystemConfig.occ_max_validation_failures`` consecutive failed
validations, the owning session's next transaction falls back to
classic 2PL (:class:`repro.core.session.Session` tracks the streak);
one successful commit switches it back to optimistic mode.
"""

from repro.btree.btree import DuplicateKeyError
from repro.core.locking import LOCK_IX, LockConflict, LockingContext
from repro.obs import trace as ev

#: Overlay tombstone: the key was deleted by this transaction.
_DELETED = object()


class OCCConflict(Exception):
    """Commit-time optimistic failure.

    ``kind`` is ``"validation"`` (a read-set resource has a committed
    version newer than the pin — ``stale`` lists the packed resource
    words) or ``"install"`` (the write-set replay lost a lock race to
    a concurrent 2PL holder).  The transaction is left open and
    rollbackable; the scheduler aborts and retries it.
    """

    def __init__(self, kind, stale=()):
        self.kind = kind
        self.stale = tuple(stale)
        super().__init__(
            "occ %s conflict (%d stale resources)" % (kind, len(self.stale))
        )


class OccContext:
    """An OCC transaction's context: pinned tracked snapshot + write set.

    Implements the same logical operations a :class:`Transaction`
    dispatches (insert/update/delete/search/scan/create), with
    read-your-own-writes semantics mirroring the B-tree's: duplicate
    insert without ``replace`` raises, update/delete report whether
    the key existed.  Nothing here touches the tree — the write set
    replays at install time.
    """

    is_read_only = False
    #: Buffered ops never half-apply (nothing touches the tree), so
    #: the scheduler's mutated-op accounting always sees False here.
    op_mutated = False

    def __init__(self, engine, session):
        self.engine = engine
        self.session = session
        self.obs = engine.obs
        self.snapshot = engine.version_manager.begin_snapshot(
            session, track_reads=True
        )
        self.snapshot_ts = self.snapshot.snapshot_ts
        #: Buffered logical ops, replay order: (kind, slot, key, value,
        #: replace).
        self._writes = []
        #: root_slot -> {key: value | _DELETED} read-your-own-writes
        #: overlay.
        self._overlays = {}
        #: The lock-managed scheme context the write set was installed
        #: into (None until install) — what ``Transaction.inner_ctx``
        #: exposes so ``commit_seq``/GC protection see the real thing.
        self.installed_ctx = None
        self.obs.inc("occ.begin")
        # The pin timestamp is shard-local; OR-ing in the version
        # manager's event namespace (shard index << 24, 0 unsharded)
        # lets the trace checker validate each leg's read set against
        # the right shard's publishes.
        self.obs.event(
            ev.OCC_BEGIN, session.sid,
            engine.version_manager.event_namespace | self.snapshot_ts,
        )

    # -- read phase --------------------------------------------------------

    @property
    def has_writes(self):
        return bool(self._writes)

    def _read(self, root_slot, key):
        """(present, value) through the overlay, falling back to a
        tracked snapshot read (which records the key's path pages in
        the read set)."""
        overlay = self._overlays.get(root_slot)
        if overlay is not None and key in overlay:
            value = overlay[key]
            if value is _DELETED:
                return False, None
            return True, value
        value = self.engine.tree(root_slot).search(self.snapshot, key)
        return value is not None, value

    def occ_search(self, root_slot, key):
        present, value = self._read(root_slot, key)
        return value if present else None

    def occ_scan(self, root_slot, lo=None, hi=None):
        """Snapshot scan merged with the private overlay."""
        overlay = self._overlays.get(root_slot, {})
        merged = {
            key: value
            for key, value in self.engine.tree(root_slot).scan(
                self.snapshot, lo, hi
            )
            if key not in overlay
        }
        for key, value in overlay.items():
            if value is _DELETED:
                continue
            if lo is not None and key < lo:
                continue
            if hi is not None and key > hi:
                continue
            merged[key] = value
        return sorted(merged.items())

    # -- write buffering ---------------------------------------------------

    def _overlay(self, root_slot):
        overlay = self._overlays.get(root_slot)
        if overlay is None:
            overlay = self._overlays[root_slot] = {}
        return overlay

    def occ_insert(self, root_slot, key, value, *, replace=False):
        present, _ = self._read(root_slot, key)
        if present and not replace:
            raise DuplicateKeyError(key)
        self._writes.append(("insert", root_slot, key, value, replace))
        self._overlay(root_slot)[key] = value

    def occ_update(self, root_slot, key, value):
        present, _ = self._read(root_slot, key)
        if not present:
            return False
        self._writes.append(("update", root_slot, key, value, False))
        self._overlay(root_slot)[key] = value
        return True

    def occ_delete(self, root_slot, key):
        present, _ = self._read(root_slot, key)
        if not present:
            return False
        self._writes.append(("delete", root_slot, key, None, False))
        self._overlay(root_slot)[key] = _DELETED
        return True

    def occ_create(self, root_slot):
        # Reading the root slot records it in the read set, so a
        # concurrent create of the same slot fails validation.
        self.snapshot.root_page_no(root_slot)
        self._writes.append(("create", root_slot, None, None, False))

    # -- savepoints (Transaction.savepoint/rollback_to) --------------------

    def snapshot_state(self):
        return (
            list(self._writes),
            {slot: dict(overlay) for slot, overlay in self._overlays.items()},
        )

    def restore_state(self, token):
        writes, overlays = token
        self._writes = list(writes)
        self._overlays = {slot: dict(ov) for slot, ov in overlays.items()}

    # -- validation + install ----------------------------------------------

    def validate(self):
        """Commit-time read-set validation; raises :class:`OCCConflict`
        when any read resource has a committed version newer than the
        pin.  Counts/events either way (TC109 audits the exchange)."""
        obs = self.obs
        versions = self.engine.version_manager
        obs.inc("occ.validation")
        obs.event(ev.OCC_VALIDATE, self.session.sid, self.snapshot_ts)
        stale = versions.validate_read_set(self.snapshot, self.snapshot_ts)
        if stale:
            obs.inc("occ.validation.abort")
            obs.event(ev.OCC_CONFLICT, self.session.sid, len(stale))
            raise OCCConflict("validation", stale)

    def unpin(self):
        """End the pinned snapshot (idempotent).  Must happen before
        the install takes its first lock: a session with a live
        snapshot acquiring locks violates TC107."""
        self.engine.version_manager.end_snapshot(self.snapshot)

    def replay_into(self, session):
        """Install the write set into a fresh lock-managed scheme
        context (caller owns lock release).  A lock conflict rolls the
        partial context back precisely and raises
        :class:`OCCConflict("install")`."""
        engine = session.engine
        inner = engine._new_context(session=session)
        lctx = LockingContext(inner, session)
        self.installed_ctx = inner
        try:
            for kind, slot, key, value, replace in self._writes:
                lctx.begin_op()
                lctx.lock_root(slot, LOCK_IX)
                tree = engine.tree(slot)
                if kind == "insert":
                    tree.insert(lctx, key, value, replace=replace)
                elif kind == "update":
                    tree.update(lctx, key, value)
                elif kind == "delete":
                    tree.delete(lctx, key)
                else:
                    tree.create(lctx)
        except LockConflict:
            engine._rollback_precise(inner)
            self.installed_ctx = None
            self.obs.inc("occ.install.conflict")
            self.obs.event(ev.OCC_CONFLICT, self.session.sid, 1)
            raise OCCConflict("install")
        return inner

    # -- GC protection (engine._protected_pages) ---------------------------

    def uncommitted_pages(self):
        ctx = self.installed_ctx
        owned = getattr(ctx, "uncommitted_pages", None)
        return owned() if owned is not None else set()


def occ_commit(engine, session, octx):
    """The single-engine optimistic commit: validate, unpin, install
    under ``commit_scope``, run the scheme's ordinary commit protocol.
    Raises :class:`OCCConflict` (transaction left open) on failure.

    Because the install replays through ``engine._commit``, the tiered
    DRAM page cache needs no OCC-specific hook: the ordinary commit's
    install points (checkpoint apply, RTM in-place publish, pointer
    swaps) invalidate every frame the replay's writes touch.
    """
    octx.validate()
    octx.unpin()
    if not octx.has_writes:
        # Snapshot-isolation read-only commit: nothing to install,
        # nothing to make durable, no locks at all.
        return None
    with session.lock_manager.commit_scope(session.sid, clock=engine.clock):
        inner = octx.replay_into(session)
        engine._commit(inner)
    engine.obs.inc("occ.commit")
    return inner
