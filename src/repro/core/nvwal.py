"""The NVWAL engine: volatile buffer cache + persistent WAL.

This is the paper's comparison baseline (Section 5).  Transactions
update page copies in a DRAM buffer cache ("volatile buffer caching"
in Figure 7); at commit the dirty pages are word-diffed against their
transaction-start snapshots and only the deltas go to a persistent WAL
(differential logging), allocated from a user-level persistent heap
and indexed by a volatile WAL index.  Checkpointing is lazy: dirty
pages reach the PM database pages only when the WAL passes a size
threshold.

Clock segments (mapping to Figure 8's commit-time bars):

    volatile_buffer_caching   Figure 7 (DRAM updates + page fetches)
    nvwal_computation         "NVWAL Computation" (differential diff)
    heap_mgmt                 "Heap Management"
    log_flush                 "Log Flush"
    atomic_commit             commit-mark store (part of "Log Flush"
                              in the paper's accounting)
    wal_index                 "Misc" (WAL index construction)
    nvwal_checkpoint          lazy checkpoint (the paper excludes it
                              from per-query commit time; reported
                              separately by the harness)
"""

from collections import OrderedDict

from repro.core.base import Engine
from repro.obs import trace as ev
from repro.pm.memory import VolatileMemory
from repro.storage.slotted_page import SlottedPage
from repro.wal.nvwal import (
    FRAME_FREE,
    FRAME_PAGE,
    FRAME_ROOT,
    NVWALog,
    encode_frame,
    word_diff,
)


class BufferCache:
    """Page frames in DRAM with LRU eviction of unpinned pages."""

    def __init__(self, dram, page_size):
        self.dram = dram
        self.page_size = page_size
        self.nframes = dram.size // page_size
        if self.nframes < 4:
            raise ValueError("DRAM buffer cache needs at least 4 frames")
        self._frame_of = OrderedDict()  # page_no -> frame index (LRU order)
        self._free = list(range(self.nframes))
        self.pinned = set()

    def lookup(self, page_no):
        """Frame base address if resident (refreshes LRU)."""
        frame = self._frame_of.get(page_no)
        if frame is None:
            return None
        self._frame_of.move_to_end(page_no)
        return frame * self.page_size

    def install(self, page_no):
        """Assign a frame (evicting an unpinned page if needed)."""
        if self._free:
            frame = self._free.pop()
        else:
            victim = next(
                (no for no in self._frame_of if no not in self.pinned), None
            )
            if victim is None:
                raise MemoryError("buffer cache full of pinned pages")
            frame = self._frame_of.pop(victim)
        self._frame_of[page_no] = frame
        return frame * self.page_size

    def drop(self, page_no):
        frame = self._frame_of.pop(page_no, None)
        if frame is not None:
            self._free.append(frame)
        self.pinned.discard(page_no)

    def clear(self):
        self._frame_of.clear()
        self._free = list(range(self.nframes))
        self.pinned.clear()

    def resident(self, page_no):
        return page_no in self._frame_of


class NVWALView:
    """Committed-state view: fetches pages through the buffer cache."""

    def __init__(self, engine):
        self.engine = engine
        self.segment = engine.obs.clock.segment  # hot-path alias

    def root_page_no(self, slot):
        return self.engine._root(slot)

    def page(self, page_no):
        return self.engine._fetch_page(page_no)


class NVWALContext(NVWALView):
    """Transaction context: volatile page updates + commit-time WAL."""

    def __init__(self, engine, session=None):
        super().__init__(engine)
        self.session = session
        self.clock = engine.clock
        self.obs = engine.obs
        self.dirty = {}       # page_no -> SlottedPage (DRAM)
        self.snapshots = {}   # page_no -> bytes at first touch
        self.new_pages = set()
        self.freed = []
        self.root_updates = {}

    def uncommitted_pages(self):
        """Pages this open transaction owns (GC protection set) —
        page numbers reserved for DRAM-only new pages."""
        return set(self.new_pages)

    def root_page_no(self, slot):
        if slot in self.root_updates:
            return self.root_updates[slot]
        return self.engine._root(slot)

    # -- mutation protocol -------------------------------------------------

    def insert_record(self, page, slot, payload):
        with self.obs.span("volatile_buffer_caching"):
            self._snapshot(page)
            offset = page.pending_insert(slot, payload)
            self._apply(page)
        return offset

    def update_record(self, page, slot, payload):
        with self.obs.span("volatile_buffer_caching"):
            self._snapshot(page)
            old_offset = page.slot_offset(slot)
            offset = page.pending_update(slot, payload)
            self._apply(page)
            page.reclaim_cell(old_offset)  # volatile copy: free to move
        return offset

    def delete_record(self, page, slot):
        with self.obs.span("volatile_buffer_caching"):
            self._snapshot(page)
            old_offset = page.slot_offset(slot)
            page.pending_delete(slot)
            self._apply(page)
            page.reclaim_cell(old_offset)

    def allocate_page(self, page_type):
        engine = self.engine
        with self.obs.span("volatile_buffer_caching"):
            page_no = engine.store.reserve_page_no()
            base = engine.cache.install(page_no)
            engine.dram.write(base, bytes(engine.config.page_size))
            page = SlottedPage.initialize(
                engine.dram, base, engine.config.page_size, page_type, persist=False
            )
            page.page_no = page_no
            engine.cache.pinned.add(page_no)
            self.dirty[page_no] = page
            self.snapshots[page_no] = bytes(engine.config.page_size)
            self.new_pages.add(page_no)
        return page_no, page

    def free_page(self, page_no):
        """Deferred to commit, like the FAST contexts: no page reuse
        within a transaction (savepoints and rollback rely on it).
        All other tracking stays intact so rollback can still restore
        the page if the free itself is rolled back."""
        self.freed.append(page_no)

    def set_root(self, slot, page_no):
        self.root_updates[slot] = page_no

    def overwrite_child_pointer(self, parent_page, slot, new_child_no):
        """Volatile pointer rewrite (NVWAL pages live in DRAM)."""
        from repro.storage.slotted_page import CELL_HEADER_SIZE

        with self.obs.span("volatile_buffer_caching"):
            self._snapshot(parent_page)
            offset = parent_page.slot_offset(slot)
            self.engine.dram.write_u32(
                parent_page.base + offset + CELL_HEADER_SIZE, new_child_no
            )

    def defragment(self, page_no):
        """In the volatile cache, defragmentation is an in-frame
        compaction — no copy-on-write is needed because DRAM pages may
        shift records freely (paper Section 4.3's contrast)."""
        with self.obs.span("volatile_buffer_caching"):
            page = self.page(page_no)
            self._snapshot(page)
            records = page.records()
            base, size = page.base, page.page_size
            page_type = page.page_type
            self.engine.dram.write(base, bytes(size))
            fresh = SlottedPage.initialize(
                self.engine.dram, base, size, page_type, persist=False
            )
            for slot, payload in enumerate(records):
                fresh.pending_insert(slot, payload)
            fresh.apply_header(fresh.pending_header_image())
            fresh.page_no = page_no
            self.dirty[page_no] = fresh
        return page_no, fresh

    # -- savepoints --------------------------------------------------------

    def snapshot_state(self):
        """Savepoint snapshot: DRAM page images + tracking sets."""
        dram = self.engine.dram
        page_size = self.engine.config.page_size
        return {
            "content": {
                page_no: bytes(dram._data[page.base : page.base + page_size])
                for page_no, page in self.dirty.items()
            },
            "dirty": set(self.dirty),
            "new_pages": set(self.new_pages),
            "snapshots": dict(self.snapshots),
            "freed": list(self.freed),
            "root_updates": dict(self.root_updates),
        }

    def restore_state(self, snapshot):
        """Partial rollback: restore DRAM page images to the savepoint."""
        engine = self.engine
        for page_no, page in list(self.dirty.items()):
            if page_no in snapshot["content"]:
                engine.dram.write(page.base, snapshot["content"][page_no])
                page._pending = None
            elif page_no in self.new_pages and page_no not in snapshot["new_pages"]:
                # Created after the savepoint: release entirely.
                engine.cache.drop(page_no)
                engine.store.free_page(page_no)
            else:
                # Committed page first dirtied after the savepoint:
                # its transaction-start image is the savepoint image.
                engine.dram.write(page.base, self.snapshots[page_no])
                page._pending = None
                engine.cache.pinned.discard(page_no)
        self.dirty = {
            page_no: self.dirty[page_no] for page_no in snapshot["dirty"]
        }
        self.new_pages = set(snapshot["new_pages"])
        self.snapshots = dict(snapshot["snapshots"])
        self.freed = list(snapshot["freed"])
        self.root_updates = dict(snapshot["root_updates"])

    # -- helpers -----------------------------------------------------------

    def page(self, page_no):
        page = self.dirty.get(page_no)
        if page is not None:
            return page
        return self.engine._fetch_page(page_no)

    def _snapshot(self, page):
        page_no = page.page_no
        if page_no in self.snapshots:
            self.dirty.setdefault(page_no, page)
            return
        self.snapshots[page_no] = bytes(
            self.engine.dram._data[page.base : page.base + page.page_size]
        )
        self.dirty[page_no] = page
        self.engine.cache.pinned.add(page_no)

    def _apply(self, page):
        page.apply_header(page.pending_header_image())

    @property
    def is_read_only(self):
        return not (self.dirty or self.freed or self.root_updates)


class NVWALEngine(Engine):
    """DRAM buffer cache + differential WAL in PM (the baseline)."""

    scheme = "nvwal"
    leaf_capacity = None
    #: Live DRAM frames mutate under open writers with no commit stamp;
    #: snapshot reads must re-resolve on every call.
    _snapshot_live_cacheable = False

    def __init__(self, config, pm, store):
        super().__init__(config, pm, store)
        if config.group_commit:
            from repro.core.epoch import EpochPipeline

            self.group = EpochPipeline(
                pm.clock, config.group_commit_size,
                config.group_commit_window_ns, self._close_epoch,
            )
        self.dram = VolatileMemory(
            config.dram_bytes,
            latency=config.latency,
            cost=config.cost,
            clock=pm.clock,
            stats=pm.stats,
        )
        self.cache = BufferCache(self.dram, config.page_size)
        self.wal = None
        # page_no -> (pre-image bytes, SlottedPage view) for snapshot
        # reads of writer-held pages: the view (and its residency
        # accounting) is reused for as long as the same pre-image is
        # current, instead of re-reading it cold on every resolution.
        self._snapshot_view_cache = {}

    @property
    def checkpoints(self):
        return self.registry.value("engine.checkpoint")

    def _format(self):
        self.wal = NVWALog.format(self.pm, self.config.heap_base,
                                  self.config.heap_bytes)

    def _attach_regions(self):
        self.wal = NVWALog.attach(self.pm, self.config.heap_base,
                                  self.config.heap_bytes)

    def _new_context(self, session=None):
        return NVWALContext(self, session=session)

    def read_view(self):
        return NVWALView(self)

    # ------------------------------------------------------------------
    # Page fetch path (DRAM miss -> database page + WAL deltas)
    # ------------------------------------------------------------------

    def _root(self, slot):
        if slot in self.wal.roots:
            return self.wal.roots[slot]
        return self.store.root(slot)

    def _snapshot_live_page(self, page_no):
        """Snapshot reads cannot use a DRAM frame an open writer has
        already applied uncommitted headers to (NVWAL mutates frames
        immediately, pre-commit).  At most one writer holds a page (X
        locks), and its first-touch snapshot is exactly the committed
        content — serve that instead.  Clean pages go through the
        normal fetch path (database page + committed WAL deltas)."""
        from repro.storage.versions import _ImageMemory

        for session in self._sessions.values():
            ctx = session.transaction_ctx
            if ctx is None:
                continue
            images = getattr(ctx, "snapshots", None)
            if images is None:
                continue
            image = images.get(page_no)
            if image is not None:
                cached = self._snapshot_view_cache.get(page_no)
                if cached is not None and cached[0] is image:
                    return cached[1]
                # The pre-image was copied out of a cache-resident DRAM
                # frame at the writer's first touch; its lines are
                # cache-warm, so reads charge the hit cost — the same
                # cost a locked reader pays on the live frame.
                page = SlottedPage(
                    _ImageMemory(image, self.clock, self.dram._hit_ns,
                                 self.dram._hit_ns),
                    0, self.config.page_size,
                )
                page.page_no = page_no
                self._snapshot_view_cache[page_no] = (image, page)
                return page
        return self._fetch_page(page_no)

    def _fetch_page(self, page_no):
        base = self.cache.lookup(page_no)
        if base is None:
            with self.obs.span("volatile_buffer_caching"):
                base = self.cache.install(page_no)
                content = self.pm.read(
                    self.store.page_base(page_no), self.config.page_size
                )
                self.dram.write(base, content)
                for offset, data in self.wal.deltas_for(page_no):
                    self.dram.write(base + offset, data)
        page = SlottedPage(self.dram, base, self.config.page_size)
        page.page_no = page_no  # reverse mapping for snapshotting
        return page

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit(self, ctx):
        with self.obs.phase("commit"):
            if ctx.is_read_only:
                return
            # MVCC version publication before any WAL append or root
            # overlay update: the context's first-touch snapshots are
            # the committed pre-images.  No-op unless a snapshot is
            # active.
            versions = self._versions
            if versions is not None and versions.capture_active:
                versions.publish_wal_commit(ctx)
            self.commit_page_counts.append(len(ctx.dirty))
            with self.obs.span("misc"):
                self.clock.advance(self.pm.cost.pager_commit_ns)
            seq = self.next_seq()
            deltas = {}
            freed = set(ctx.freed)
            with self.obs.span("nvwal_computation"):
                for page_no, page in ctx.dirty.items():
                    if page_no in freed:
                        continue
                    current = self.dram._data[
                        page.base : page.base + self.config.page_size
                    ]
                    deltas[page_no] = word_diff(ctx.snapshots[page_no], current)
                    self.clock.advance(
                        self.pm.cost.diff_byte_ns * self.config.page_size
                    )
            frames = []
            for page_no, ranges in deltas.items():
                if not ranges:
                    continue
                frame = encode_frame(seq, FRAME_PAGE, page_no, ranges)
                frames.append(self._append(frame))
            for page_no in ctx.freed:
                frames.append(
                    self._append(encode_frame(seq, FRAME_FREE, page_no, []))
                )
            for slot, page_no in ctx.root_updates.items():
                payload = [(0, page_no.to_bytes(4, "little"))]
                frames.append(
                    self._append(encode_frame(seq, FRAME_ROOT, slot, payload))
                )
            if self.group is not None:
                # Grouped: the frames are installed (each chain link
                # fences itself) but the commit mark waits for the
                # epoch's shared fence.  The volatile WAL index and
                # root table publish now — the member is committed and
                # visible to every later fetch — while page frees are
                # deferred to the mark (a freed page is still
                # referenced by the pre-epoch durable tree).
                with self.obs.span("wal_index"):
                    self.wal.publish(frames)
                    self.clock.advance(
                        self.pm.cost.wal_index_insert_ns * len(frames)
                    )
                self.wal.roots.update(ctx.root_updates)
                for page_no in ctx.dirty:
                    self.cache.pinned.discard(page_no)
                self.group.join({"seq": seq, "freed": list(ctx.freed)})
                ctx.commit_seq = seq
                self.obs.inc("group.join")
                self.group.maybe_close()
                return
            with self.obs.span("log_flush"):
                self.pm.sfence()
            with self.obs.span("atomic_commit"):
                self.wal.commit(seq)
            with self.obs.span("wal_index"):
                self.wal.publish(frames)
                self.clock.advance(self.pm.cost.wal_index_insert_ns * len(frames))
            self.wal.roots.update(ctx.root_updates)
            for page_no in ctx.freed:
                self.cache.drop(page_no)
                self.store.free_page(page_no)
            for page_no in ctx.dirty:
                self.cache.pinned.discard(page_no)
        if self.wal.bytes_used >= self.config.nvwal_checkpoint_bytes:
            self.checkpoint()

    def _close_epoch(self):
        """Close the open epoch: the members' WAL frames are already
        durable (every chain link fences as it installs), so one
        shared sfence settles any straggling lines and one ≤8-byte
        commit mark — the last member's seq — commits the whole chain
        prefix.  Deferred page frees and the lazy-checkpoint threshold
        check follow."""
        group = self.group
        with self.obs.span("log_flush"):
            self.pm.sfence()
        with self.obs.span("atomic_commit"):
            self.wal.commit(group.members[-1]["seq"])
        members = group.take()
        for member in members:
            for page_no in member["freed"]:
                self.cache.drop(page_no)
                self.store.free_page(page_no)
        self.obs.inc("group.close")
        if self.wal.bytes_used >= self.config.nvwal_checkpoint_bytes:
            self.checkpoint()

    def _append(self, frame):
        with self.obs.span("heap_mgmt"):
            addr = self.wal.heap.pmalloc(len(frame))
        with self.obs.span("log_flush"):
            self.wal.install_frame(addr, frame)
        return addr

    def _rollback(self, ctx):
        for page_no, page in ctx.dirty.items():
            if page_no in ctx.new_pages:
                self.cache.drop(page_no)
                self.store.free_page(page_no)
                continue
            self.dram.write(page.base, ctx.snapshots[page_no])
            page._pending = None
            self.cache.pinned.discard(page_no)

    # ------------------------------------------------------------------
    # Checkpoint + recovery
    # ------------------------------------------------------------------

    def checkpoint(self):
        """Lazy checkpoint: write every WAL-covered page back to the
        database region and reset the log (paper Section 2.2)."""
        if self.group is not None:
            # An open epoch's members must reach their shared mark
            # before their frames are written back and the WAL resets
            # (the pipeline's re-entrancy guard makes this a no-op
            # when the close itself triggered the checkpoint).
            self.group.drain()
        self.obs.inc("engine.checkpoint")
        self.obs.event(ev.CHECKPOINT, len(self.wal.index))
        with self.obs.span("nvwal_checkpoint"):
            for page_no in list(self.wal.index):
                page = self._fetch_page(page_no)
                content = bytes(
                    self.dram._data[page.base : page.base + self.config.page_size]
                )
                target = self.store.page_base(page_no)
                # repro: allow[PM001] checkpoint writeback of whole WAL-protected pages, flushed below
                self.pm.write(target, content)
                self.pm.flush_range(target, self.config.page_size)
                # NVWAL keeps ``_page_cache_supported = False`` (its
                # DRAM tier is the buffer cache above), so this is a
                # guarded no-op — kept so the copy-back install point
                # stays coherent if the cache is ever enabled here.
                self._cache_invalidate(page_no)
            for slot, page_no in self.wal.roots.items():
                self.store.set_root(slot, page_no, persist=False)
                self.pm.flush_range(self.store.base, 64)
            self.pm.sfence()
            self.wal.roots.clear()
            self.wal.reset()

    def recover(self):
        """After a crash: DRAM is gone; the WAL chain prefix up to the
        commit mark is rebuilt into the index (done by ``attach``), and
        reads reconstruct pages from database + deltas on demand."""
        self.obs.inc("engine.recovery")
        self.cache.clear()
        self._seq = self.wal.committed_seq + 1
        if self.config.eager_recovery_gc:
            self.garbage_collect_after_recovery()

    def garbage_collect_after_recovery(self):
        """Reclaim pages leaked by uncommitted allocations.

        A page is live if a tree reaches it *or* the WAL still carries
        deltas for it (it may hold committed content not yet
        checkpointed).
        """
        reachable = self.reachable_pages()
        reachable |= set(self.wal.index)
        self.store.garbage_collect(reachable)
