"""The paper's contribution: failure-atomic slotted-paging engines.

``open_engine(config)`` builds a storage engine (pager + B-tree +
commit scheme) on a simulated persistent-memory arena:

* ``"fast"``   — Failure-Atomic Slot-Header logging for every commit
  (paper Section 4.1);
* ``"fastplus"`` — FAST plus the RTM in-place commit for
  single-page transactions (Section 4.2);
* ``"nvwal"``  — the NVWAL baseline: volatile buffer cache +
  differential write-ahead logging in PM (Kim et al., compared
  throughout Section 5);
* ``"naive"``  — unlogged in-place writes, the strawman the atomicity
  ablation uses to show why the paper's machinery is necessary.
"""

from repro.core.config import SystemConfig
from repro.core.base import Engine, ReadView, Transaction, TransactionError
from repro.core.fast import FASTEngine, FASTPlusEngine
from repro.core.locking import (
    DeadlockError,
    LockConflict,
    LockError,
    LockManager,
    LockTimeout,
)
from repro.core.naive import NaiveEngine
from repro.core.nvwal import NVWALEngine
from repro.core.scheduler import Scheduler, SchedulerError
from repro.core.session import Session

_ENGINES = {
    "fast": FASTEngine,
    "fastplus": FASTPlusEngine,
    "nvwal": NVWALEngine,
    "naive": NaiveEngine,
}

SCHEMES = tuple(sorted(_ENGINES))


def engine_class(scheme):
    """The engine class registered under ``scheme``."""
    try:
        return _ENGINES[scheme]
    except KeyError:
        raise ValueError(
            "unknown scheme %r (choose from %s)" % (scheme, ", ".join(SCHEMES))
        ) from None


def open_engine(config=None, *, scheme=None, pm=None):
    """Create (or re-attach to) an engine.

    With ``pm`` given, attaches to an existing formatted arena and runs
    crash recovery; otherwise a fresh arena is created and formatted.
    """
    config = config or SystemConfig()
    cls = engine_class(scheme or config.scheme)
    if pm is None:
        return cls.create(config)
    return cls.attach(config, pm)


__all__ = [
    "DeadlockError",
    "Engine",
    "FASTEngine",
    "FASTPlusEngine",
    "LockConflict",
    "LockError",
    "LockManager",
    "LockTimeout",
    "NVWALEngine",
    "NaiveEngine",
    "ReadView",
    "SCHEMES",
    "Scheduler",
    "SchedulerError",
    "Session",
    "SystemConfig",
    "Transaction",
    "TransactionError",
    "engine_class",
    "open_engine",
]
