"""Engine and transaction base classes.

An ``Engine`` owns the simulated persistent memory, the page store,
and one B-tree per named root slot.  Subclasses provide the commit
scheme by implementing ``_new_context`` / ``_commit`` / ``_rollback``
/ ``recover``.

The measured quantity everywhere is *simulated* time: the engine's
``clock`` accumulates nanoseconds charged by the memory hierarchy, and
the named segments ("search", "page_update", "commit", plus the
sub-phases) correspond to the bars of the paper's breakdown figures.
"""

from contextlib import nullcontext

from repro.btree.btree import BTree
from repro.core.locking import LOCK_IS, LOCK_IX
from repro.obs import trace as ev
from repro.pm.clock import SimClock
from repro.pm.memory import PersistentMemory
from repro.pm.stats import MemoryStats
from repro.storage.pagestore import N_ROOT_SLOTS, PageStore

#: Shared reusable no-op context manager: the default (session-less)
#: transaction path opens this instead of a session clock segment.
_NULL_CM = nullcontext()


def _null_segment():
    return _NULL_CM


class TransactionError(Exception):
    """Illegal transaction state (nested begin, reuse after close...)."""


class ReadView:
    """Committed-state view over the page store (no pending overlays)."""

    def __init__(self, store):
        self.store = store
        # The one hot-path alias for the view protocol's
        # ``segment(name)``: bound straight to the clock's cached
        # context managers, skipping two attribute hops per call.
        self.segment = store.pm.clock.segment

    def root_page_no(self, slot):
        return self.store.root(slot)

    def page(self, page_no):
        return self.store.page(page_no)


class GroupReadView(ReadView):
    """Committed-state view while a group-commit epoch is open: epoch
    members are committed (their headers are redo-logged, awaiting the
    shared mark) but not yet checkpointed into the pages, so page and
    root fetches go through the engine's overlay-aware fetch path."""

    def __init__(self, engine):
        super().__init__(engine.store)
        self.engine = engine

    def root_page_no(self, slot):
        return self.engine._root(slot)

    def page(self, page_no):
        return self.engine._fetch_page(page_no)


class CachedReadView(GroupReadView):
    """Committed-state view served through the tiered DRAM page cache:
    page fetches go through the engine's cache-aware read path (which
    still honours open-epoch member overlays by bypassing the cache for
    overlaid pages); root fetches stay overlay-aware as in the group
    view.  Only ever constructed when ``dram_cache_pages > 0``."""

    def page(self, page_no):
        return self.engine._read_page(page_no)


class Transaction:
    """A database transaction: a scheme context plus B-tree bindings.

    Usable as a context manager — commits on normal exit, rolls back
    on exception::

        with engine.transaction() as txn:
            txn.insert(b"key", b"value")

    With a ``session``, the transaction belongs to that session: its
    context is wrapped by the session's lock manager (when locking),
    simulated time spent in its operations is attributed to the
    session's clock segment, and the session is notified on finish.
    """

    def __init__(self, engine, session=None):
        self.engine = engine
        self.session = session
        self._locked = False
        self._snapshot = False
        self._occ = False
        # One lifecycle, three isolation modes: the session's state
        # machine (Session._begin_mode) picks how this transaction
        # reads and writes; everything downstream dispatches on the
        # _locked/_snapshot/_occ flags set here.
        mode = "locked" if session is None else session._begin_mode()
        if mode == "read_only":
            # Read-only snapshot transaction: the context is a
            # SnapshotContext pinned at the current commit frontier —
            # no scheme context, no locks, no IS/S traffic at all.
            ctx = engine.version_manager.begin_snapshot(session)
            self._snapshot = True
        elif mode == "occ":
            # Optimistic transaction: reads at a pinned *tracked*
            # snapshot, writes buffered in a private write set that
            # installs (under short X locks) only at commit.
            from repro.core.occ import OccContext

            ctx = OccContext(engine, session)
            self._occ = True
        else:
            ctx = engine._new_context(session=session)
            if session is not None:
                ctx = session._wrap_context(ctx)
                self._locked = session.locking
        if session is not None:
            self._op_segment = session.op_segment
        else:
            self._op_segment = _null_segment
        self.ctx = ctx
        self._done = False

    @property
    def inner_ctx(self):
        """The scheme context itself (unwrapping any lock shim) — what
        the engine's commit/rollback/recovery paths consume.  For an
        OCC transaction this is the installed context once the write
        set has replayed (the OccContext itself before that)."""
        ctx = self.ctx
        if self._occ:
            return ctx.installed_ctx if ctx.installed_ctx is not None else ctx
        return ctx.inner if self._locked else ctx

    @property
    def pinned_snapshot(self):
        """The MVCC snapshot this transaction pinned (read-only and
        OCC modes; None otherwise) — the session epilogue unpins it."""
        if self._snapshot:
            return self.ctx
        if self._occ:
            return self.ctx.snapshot
        return None

    # -- data operations ------------------------------------------------

    def insert(self, key, value, *, root_slot=0, replace=False):
        self._check_open()
        self._check_writable()
        with self._op_segment():
            if self._occ:
                self.ctx.occ_insert(root_slot, key, value, replace=replace)
                return
            if self._locked:
                self.ctx.begin_op()
                self.ctx.lock_root(root_slot, LOCK_IX)
            self.engine.tree(root_slot).insert(
                self.ctx, key, value, replace=replace
            )

    def update(self, key, value, *, root_slot=0):
        self._check_open()
        self._check_writable()
        with self._op_segment():
            if self._occ:
                return self.ctx.occ_update(root_slot, key, value)
            if self._locked:
                self.ctx.begin_op()
                self.ctx.lock_root(root_slot, LOCK_IX)
            return self.engine.tree(root_slot).update(self.ctx, key, value)

    def delete(self, key, *, root_slot=0):
        self._check_open()
        self._check_writable()
        with self._op_segment():
            if self._occ:
                return self.ctx.occ_delete(root_slot, key)
            if self._locked:
                self.ctx.begin_op()
                self.ctx.lock_root(root_slot, LOCK_IX)
            return self.engine.tree(root_slot).delete(self.ctx, key)

    def search(self, key, *, root_slot=0):
        """Read inside the transaction (sees its own writes)."""
        self._check_open()
        with self._op_segment():
            if self._occ:
                return self.ctx.occ_search(root_slot, key)
            if self._locked:
                self.ctx.begin_op()
                self.ctx.lock_root(root_slot, LOCK_IS)
            return self.engine.tree(root_slot).search(self.ctx, key)

    def scan(self, lo=None, hi=None, *, root_slot=0):
        self._check_open()
        if self._occ:
            return self.ctx.occ_scan(root_slot, lo, hi)
        if self._locked:
            self.ctx.begin_op()
            self.ctx.lock_root(root_slot, LOCK_IS)
        return self.engine.tree(root_slot).scan(self.ctx, lo, hi)

    def create_tree(self, root_slot):
        """Allocate an empty tree at ``root_slot`` (commits with txn)."""
        self._check_open()
        self._check_writable()
        with self._op_segment():
            if self._occ:
                self.ctx.occ_create(root_slot)
                return
            if self._locked:
                self.ctx.begin_op()
                self.ctx.lock_root(root_slot, LOCK_IX)
            self.engine.tree(root_slot).create(self.ctx)

    def savepoint(self):
        """Capture a point to partially roll back to (``rollback_to``).

        Returns an opaque token.  Schemes that apply changes in place
        immediately (naive) cannot support this.
        """
        self._check_open()
        self._check_writable()
        snapshot = getattr(self.ctx, "snapshot_state", None)
        if snapshot is None:
            raise TransactionError(
                "the %r scheme does not support savepoints" % self.engine.scheme
            )
        return snapshot()

    def rollback_to(self, token):
        """Undo every change made after ``savepoint()`` returned
        ``token``; the transaction stays open."""
        self._check_open()
        self._check_writable()
        self.ctx.restore_state(token)

    # -- lifecycle --------------------------------------------------------

    def _finish(self, committed, work):
        """The one transaction epilogue every isolation mode shares:
        run the scheme work (if any) inside the session's clock
        segment, count the outcome, then — committed, aborted, or
        crashed mid-commit — hand the transaction back to its owner.
        """
        try:
            if work is not None:
                with self._op_segment():
                    work()
            self.engine.obs.inc(
                "engine.txn.commit" if committed else "engine.txn.rollback"
            )
        finally:
            if self.session is None:
                self.engine._active = None
            else:
                self.session._txn_finished(self, committed=committed)

    def commit(self):
        self._check_open()
        if self._occ:
            # May raise OCCConflict, leaving the transaction OPEN: the
            # caller (normally the scheduler) rolls it back and
            # retries, eventually under the 2PL fallback.
            self._commit_occ()
            return
        self._done = True
        if self._snapshot:
            # Nothing to make durable: a snapshot read nothing but
            # committed versions and wrote nothing.  Ending the
            # transaction unpins the snapshot (advancing the GC
            # watermark) via the session epilogue.
            self._finish(True, None)
            return
        self._finish(True, lambda: self.engine._commit(self.inner_ctx))

    def _commit_occ(self):
        """Validate + install the OCC write set (see repro.core.occ)."""
        from repro.core.occ import OCCConflict, occ_commit

        session = self.session
        try:
            with self._op_segment():
                occ_commit(self.engine, session, self.ctx)
        except OCCConflict:
            session._occ_failed()
            raise
        self._done = True
        self._finish(True, None)

    def rollback(self):
        self._check_open()
        self._done = True
        if self._snapshot or self._occ:
            # Nothing durable to undo: a snapshot wrote nothing, and
            # an OCC write set that never installed (or whose install
            # already rolled back precisely) lives only in the buffer.
            self._finish(False, None)
            return
        if self._locked:
            # Concurrent sessions roll back precisely: other
            # sessions' uncommitted pages must survive, so no
            # global garbage collection here.
            work = lambda: self.engine._rollback_precise(self.inner_ctx)
        else:
            work = lambda: self.engine._rollback(self.inner_ctx)
        self._finish(False, work)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._done:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False

    def _check_open(self):
        if self._done:
            raise TransactionError("transaction already finished")

    def _check_writable(self):
        if self._snapshot:
            raise TransactionError(
                "read-only snapshot transactions cannot write"
            )


class Engine:
    """Abstract storage engine over a simulated PM arena."""

    scheme = "abstract"
    #: leaf slot-header record cap (None = space-limited); FAST⁺
    #: overrides this with the one-cache-line bound.
    leaf_capacity = None
    #: Concurrent sessions need transaction rollback; the naive
    #: in-place scheme cannot provide it and opts out.
    supports_sessions = True
    #: The open group-commit epoch pipeline (``repro.core.epoch``);
    #: ``None`` = grouping off, every commit fences for itself.
    #: Schemes that support grouping construct one from the config.
    group = None
    #: Whether the scheme's committed reads may be served from the
    #: tiered DRAM page cache (``repro.storage.cache``).  PM-resident
    #: schemes (FAST / FAST⁺) opt in; NVWAL keeps False — its DRAM
    #: tier *is* its volatile buffer cache, and its shared frames are
    #: mutated by open writers, so a second copy layer would be both
    #: redundant and incoherent.
    _page_cache_supported = False

    def __init__(self, config, pm, store):
        self.config = config
        self.pm = pm
        self.store = store
        # All instrumentation (registry counters, phase histograms,
        # event trace) flows through the arena's shared handle.
        self.obs = pm.obs
        self.page_cache = None
        if config.dram_cache_pages > 0 and self._page_cache_supported:
            from repro.storage.cache import TieredPageCache

            self.page_cache = TieredPageCache(store, config.dram_cache_pages)
            # Freed (or GC-swept) pages can be reallocated with new
            # content: the store tells us so a stale frame can never
            # outlive its page's identity.
            store.on_page_freed = self._on_page_freed
        self._trees = {}
        self._active = None
        self._sessions = {}      # sid -> live Session
        self._next_sid = 1
        self._lock_manager = None
        self._versions = None    # MVCC version manager (on first use)
        self._seq = 1
        # Per-commit dirty-page counts: recorded workload data (not a
        # metric) fed to the legacy block-device models that reproduce
        # the paper's write-amplification motivation (Figure 1).
        self.commit_page_counts = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build_pm(cls, config):
        """A fresh arena with the config's latency/cost/crash model."""
        return PersistentMemory(
            config.arena_bytes,
            latency=config.latency,
            cost=config.cost,
            clock=SimClock(),
            stats=MemoryStats(),
            atomic_granularity=config.atomic_granularity,
            cache_lines=config.cache_lines,
            flush_instruction=config.flush_instruction,
        )

    @classmethod
    def create(cls, config, pm=None):
        """Format a fresh arena and bootstrap tree 0."""
        pm = pm or cls.build_pm(config)
        store = PageStore.format(pm, config.store_base, config.npages, config.page_size)
        engine = cls(config, pm, store)
        engine._format()
        with engine.transaction() as txn:
            txn.create_tree(0)
        # A fresh database is durable on return: the bootstrap commit
        # must not sit in an open group-commit epoch (no-op otherwise).
        engine.drain_group_commit()
        return engine

    @classmethod
    def attach(cls, config, pm):
        """Re-open an existing arena (post-crash) and run recovery."""
        store = PageStore.attach(pm, config.store_base)
        engine = cls(config, pm, store)
        engine._attach_regions()
        engine.recover()
        return engine

    # Subclass hooks -----------------------------------------------------

    def _format(self):
        """Format scheme-specific regions (log, heap...)."""

    def _attach_regions(self):
        """Attach scheme-specific regions after a restart."""

    def _new_context(self, session=None):
        raise NotImplementedError

    def _commit(self, ctx):
        raise NotImplementedError

    def _rollback(self, ctx):
        raise NotImplementedError

    def _rollback_precise(self, ctx):
        """Roll back exactly one session's context without global
        garbage collection (other sessions' uncommitted pages must
        survive).  Schemes whose ``_rollback`` is already precise —
        NVWAL restores page snapshots and frees only its own
        allocations — simply inherit this alias."""
        self._rollback(ctx)

    def recover(self):
        """Bring the committed state to consistency after a crash."""
        raise NotImplementedError

    def read_view(self):
        """A view of committed state for searches/scans."""
        if self.page_cache is not None:
            return CachedReadView(self)
        if self.group is not None:
            return GroupReadView(self)
        return ReadView(self.store)

    def _read_page(self, page_no):
        """The committed page, preferring the DRAM cache tier.

        Open-epoch member overlays bypass the cache entirely: an
        overlaid page's *visible* committed state (durable header +
        pending member header) differs from its durable image, and the
        cache only ever holds durable committed images.  Cache off:
        exactly ``_fetch_page``.
        """
        cache = self.page_cache
        if cache is not None:
            group = self.group
            if group is None or not group.overlaid(page_no):
                page = cache.lookup(page_no)
                if page is None:
                    page = cache.fill(page_no)
                return page
        return self._fetch_page(page_no)

    def _cache_invalidate(self, page_no, reason=ev.INVAL_INSTALL):
        """Drop ``page_no`` from the DRAM cache (no-op when cache off).

        The coherence contract: call this at every point a committed
        install rewrites the page's durable header — checkpoints, RTM
        in-place publishes, pointer swaps (and their rollback
        reversals), epoch closes, 2PC installs, recovery replay."""
        cache = self.page_cache
        if cache is not None:
            cache.invalidate(page_no, reason)

    def _on_page_freed(self, page_no):
        """PageStore callback: a page returned to the free list (or was
        swept by GC) — it can be reallocated with new content, so its
        frame must die now."""
        self.page_cache.invalidate(page_no, ev.INVAL_FREE)

    def _fetch_page(self, page_no):
        """The committed page, with any open-epoch member overlay
        applied (grouping off: exactly the store fetch).  NVWAL
        overrides this — its pages come from the DRAM buffer cache."""
        page = self.store.page(page_no)
        group = self.group
        if group is not None:
            image = group.pending_headers.get(page_no)
            if image is not None:
                page.overlay_header(image)
        return page

    def _root(self, slot):
        """The committed root pointer, with any open-epoch member
        overlay applied.  NVWAL overrides this (its WAL root table
        overlays first)."""
        group = self.group
        if group is not None:
            page_no = group.pending_roots.get(slot)
            if page_no is not None:
                return page_no
        return self.store.root(slot)

    def drain_group_commit(self):
        """Close any open group-commit epoch: issue the shared fence
        and publish the group mark covering every pending member.
        No-op when grouping is off or the epoch is empty."""
        if self.group is not None and self.group.member_count:
            with self.obs.phase("commit"):
                self.group.close()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def clock(self):
        return self.pm.clock

    @property
    def stats(self):
        return self.pm.stats

    @property
    def registry(self):
        """The shared :class:`repro.obs.MetricsRegistry`."""
        return self.obs.registry

    @property
    def trace(self):
        """The shared :class:`repro.obs.TraceRecorder`."""
        return self.obs.trace

    def tree(self, root_slot=0):
        """The B-tree bound to ``root_slot``."""
        tree = self._trees.get(root_slot)
        if tree is None:
            tree = BTree(root_slot=root_slot, leaf_capacity=self.leaf_capacity)
            self._trees[root_slot] = tree
        return tree

    def transaction(self):
        """The engine's implicit single-session transaction (the
        historical API; sessions don't pass through here)."""
        if self._active is not None:
            raise TransactionError("a transaction is already active")
        for session in self._sessions.values():
            # The implicit transaction bypasses the lock manager, so
            # letting it overlap a locked or OCC session's open
            # transaction would silently break their isolation.
            # Read-only snapshot sessions are exempt by design: MVCC
            # readers never block writers.
            if session.in_transaction and not session.read_only:
                raise TransactionError(
                    "implicit engine.transaction() cannot overlap session "
                    "%r's open transaction; commit it first or use a "
                    "session of your own" % session.name
                )
        txn = Transaction(self)
        self._active = txn
        self.obs.inc("engine.txn.begin")
        return txn

    # -- sessions ----------------------------------------------------------

    @property
    def lock_manager(self):
        """The engine-wide lock manager shared by all sessions
        (created on first use; the single-session path never does)."""
        if self._lock_manager is None:
            from repro.core.locking import LockManager

            self._lock_manager = LockManager(obs=self.obs)
        return self._lock_manager

    @property
    def version_manager(self):
        """The engine-wide MVCC version manager (created on first use;
        runs with no read-only session never touch it)."""
        if self._versions is None:
            from repro.storage.versions import VersionManager

            self._versions = VersionManager(self)
        return self._versions

    #: Snapshots may reuse live-page views across reads: durable page
    #: content only changes at a commit, which stamps the page and
    #: shadows any cached view with a chain entry.  NVWAL sets this
    #: False (open writers mutate shared DRAM frames without a stamp).
    _snapshot_live_cacheable = True

    def _snapshot_live_page(self, page_no):
        """The live page as a snapshot read sees it.  For PM-resident
        schemes the committed-state page object suffices: pre-commit
        record writes sit in free space invisible to the durable
        header (epoch-member overlays are committed state and apply).
        The DRAM cache tier serves these too — a frame always holds
        the latest committed image, which is exactly what the version
        manager resolves the live page to (a commit that supersedes it
        stamps the page and shadows any live view with a chain entry,
        and the install invalidates the frame).  NVWAL overrides this
        (its open writers apply headers to shared DRAM frames before
        commit)."""
        return self._read_page(page_no)

    def session(self, name=None, read_only=False, isolation=None):
        """Open a session (one concurrent client).

        Sessions own their transactions independently of the engine's
        implicit one: several sessions may hold open transactions at
        the same time, serialized by the shared lock manager.

        ``isolation`` picks the concurrency mode: ``"locked"``
        (strict 2PL, the default), ``"read_only"`` (MVCC snapshot
        reads — no lock manager at all, zero locks), or ``"occ"``
        (snapshot-isolation writes validated at commit, installed
        under short commit-time locks, falling back to 2PL after
        repeated validation failures).  ``read_only=True`` is the
        historical spelling of ``isolation="read_only"``.
        """
        if not self.supports_sessions:
            raise TransactionError(
                "the %r scheme does not support concurrent sessions "
                "(it cannot roll back)" % self.scheme
            )
        if isolation is None:
            isolation = "read_only" if read_only else "locked"
        if isolation not in ("locked", "read_only", "occ"):
            raise ValueError("unknown isolation mode %r" % isolation)
        from repro.core.session import Session

        sid = self._next_sid
        self._next_sid += 1
        session = Session(
            self, sid, name or ("s%d" % sid),
            lock_manager=(
                None if isolation == "read_only" else self.lock_manager
            ),
            isolation=isolation,
        )
        self._sessions[sid] = session
        self.obs.inc("engine.session.open")
        return session

    def _session_closed(self, session):
        self._sessions.pop(session.sid, None)

    def sessions(self):
        """The live (unclosed) sessions, in creation order."""
        return list(self._sessions.values())

    def _protected_pages(self, exclude_ctx=None):
        """Pages owned by live sessions' uncommitted transactions —
        unreachable from any committed structure, but *not* garbage.
        While MVCC snapshots are active, pages reachable through any
        snapshot's pinned view are shielded too."""
        protected = set()
        for session in self._sessions.values():
            ctx = session.transaction_ctx
            if ctx is None or ctx is exclude_ctx:
                continue
            owned = getattr(ctx, "uncommitted_pages", None)
            if owned is not None:
                protected |= owned()
        if self._versions is not None and self._versions.capture_active:
            protected |= self._versions.pinned_pages()
        if self.group is not None:
            # Pages freed by epoch members: committed-free, but the
            # pre-epoch durable tree still references them until the
            # group mark — reclaiming them now would let a crash
            # resurrect a reused page.
            protected |= self.group.deferred_pages()
        return protected

    def insert(self, key, value, *, root_slot=0, replace=False):
        """Single-statement transaction (the paper's mobile workload)."""
        with self.transaction() as txn:
            txn.insert(key, value, root_slot=root_slot, replace=replace)

    def delete(self, key, *, root_slot=0):
        with self.transaction() as txn:
            return txn.delete(key, root_slot=root_slot)

    def search(self, key, *, root_slot=0):
        """Committed read."""
        return self.tree(root_slot).search(self.read_view(), key)

    def scan(self, lo=None, hi=None, *, root_slot=0):
        return self.tree(root_slot).scan(self.read_view(), lo, hi)

    def verify(self, root_slot=0):
        """Structural invariant check; returns the record count."""
        return self.tree(root_slot).verify(self.read_view())

    def active_root_slots(self):
        """Root slots holding live structures (NVWAL overlays root
        pointers in its WAL until checkpoint, so go through the view)."""
        view = self.read_view()
        return [
            slot for slot in range(N_ROOT_SLOTS)
            if view.root_page_no(slot) != 0
        ]

    def reachable_pages(self):
        """Pages referenced by any live structure.

        Root slots may hold B-trees (leaf/internal root page) or hash
        indexes (META directory page, see ``repro.hashindex``); the
        root page's type says which reachability walk applies.
        """
        from repro.hashindex.index import HashIndex
        from repro.storage.slotted_page import PAGE_META

        view = self.read_view()
        pages = set()
        for slot in self.active_root_slots():
            root_no = view.root_page_no(slot)
            if view.page(root_no).page_type == PAGE_META:
                pages |= HashIndex.reachable_from_directory(view, root_no)
            else:
                pages |= self.tree(slot).reachable_pages(view)
        return pages

    def garbage_collect(self, *, exclude_ctx=None):
        """Reclaim pages leaked by crashes (paper Section 4.4).

        Pages held by other live sessions' uncommitted transactions
        are *not* garbage even though no committed structure reaches
        them yet; ``exclude_ctx`` names the context whose own pages
        should nonetheless be reclaimed (its rollback is the caller).
        """
        protected = self._protected_pages(exclude_ctx)
        return self.store.garbage_collect(
            self.reachable_pages(), protected=protected
        )

    def compact(self, root_slot=0, *, min_waste=64):
        """VACUUM one tree: rewrite fragmented pages copy-on-write in
        a single transaction.  Returns the number of pages rewritten.
        """
        from repro.storage.slotted_page import PAGE_META

        view = self.read_view()
        root_no = view.root_page_no(root_slot)
        if not root_no or view.page(root_no).page_type == PAGE_META:
            return 0  # empty slot / hash directory
        with self.transaction() as txn:
            return self.tree(root_slot).compact(txn.ctx, min_waste=min_waste)

    def compact_all(self, *, min_waste=64):
        """VACUUM every live tree; returns total pages rewritten."""
        return sum(
            self.compact(slot, min_waste=min_waste)
            for slot in self.active_root_slots()
        )

    def repair_free_lists(self):
        """Lazily rebuild every reachable page's in-page free list
        (they are reconstructible; see paper Section 4.3)."""
        for page_no in self.reachable_pages():
            self.store.page(page_no).rebuild_free_list()

    def page_stats(self):
        """Storage-health snapshot: page counts by type, fill factor,
        and fragmentation (the quantities Section 4.3's
        defragmentation policy reasons about)."""
        from repro.storage.slotted_page import (
            PAGE_INTERNAL,
            PAGE_LEAF,
            PAGE_META,
            PAGE_OVERFLOW,
        )

        names = {
            PAGE_LEAF: "leaf",
            PAGE_INTERNAL: "internal",
            PAGE_META: "meta",
            PAGE_OVERFLOW: "overflow",
        }
        view = self.read_view()
        counts = {}
        used_bytes = 0
        fragmented_bytes = 0
        data_capacity = 0
        for page_no in self.reachable_pages():
            page = view.page(page_no)
            kind = names.get(page.page_type, "other")
            counts[kind] = counts.get(kind, 0) + 1
            if page.page_type in (PAGE_LEAF, PAGE_INTERNAL):
                total_free = page.total_free()
                used_bytes += self.config.page_size - total_free
                fragmented_bytes += total_free - page.contiguous_free()
                data_capacity += self.config.page_size
        return {
            "pages_by_type": counts,
            "reachable_pages": sum(counts.values()),
            "free_pages": self.store.free_page_count(),
            "fill_factor": (used_bytes / data_capacity) if data_capacity else 0.0,
            "fragmented_bytes": fragmented_bytes,
        }

    def next_seq(self):
        seq = self._seq
        self._seq += 1
        return seq
