"""Naive in-place engine: the strawman for the atomicity ablation.

Every mutation overwrites the slot header in place with ordinary
stores and flushes — no log, no RTM, no commit mark.  With
failure-atomic writes narrower than the header (the 8-byte crash
model), a crash can persist *part* of a header update, exactly the
torn-commit hazard the paper's two mechanisms eliminate.  The ablation
benchmark (and the crash-consistency harness) demonstrate this: the
naive engine is the fastest and the only one that corrupts.
"""

from repro.core.base import Engine
from repro.storage.defrag import defragment_into


class NaiveContext:
    """Applies every header change immediately and non-atomically."""

    def __init__(self, engine):
        self.engine = engine
        self.store = engine.store
        self.pm = engine.pm
        self.clock = engine.pm.clock
        self.obs = engine.obs
        self._pages = {}

    # -- view protocol ---------------------------------------------------

    def segment(self, name):
        return self.obs.span(name)

    def root_page_no(self, slot):
        return self.store.root(slot)

    def page(self, page_no):
        page = self._pages.get(page_no)
        if page is None:
            page = self.store.page(page_no)
            self._pages[page_no] = page
        return page

    # -- mutation protocol -------------------------------------------------

    def insert_record(self, page, slot, payload):
        with self.obs.span("in_place_record_insert"):
            offset = page.pending_insert(slot, payload)
        with self.obs.span("clflush_record"):
            page.flush_record(offset, len(payload))
        self._apply(page)
        return offset

    def update_record(self, page, slot, payload):
        old_offset = page.slot_offset(slot)
        with self.obs.span("in_place_record_insert"):
            offset = page.pending_update(slot, payload)
        with self.obs.span("clflush_record"):
            page.flush_record(offset, len(payload))
        self._apply(page)
        page.reclaim_cell(old_offset)
        return offset

    def delete_record(self, page, slot):
        old_offset = page.slot_offset(slot)
        page.pending_delete(slot)
        self._apply(page)
        page.reclaim_cell(old_offset)

    def allocate_page(self, page_type):
        page = self.store.allocate_page(page_type)
        page_no = self.store.page_no_of(page)
        self._pages[page_no] = page
        return page_no, page

    def free_page(self, page_no):
        self._pages.pop(page_no, None)
        self.store.free_page(page_no)

    def set_root(self, slot, page_no):
        self.store.set_root(slot, page_no)

    def overwrite_child_pointer(self, parent_page, slot, new_child_no):
        from repro.storage.slotted_page import CELL_HEADER_SIZE

        offset = parent_page.slot_offset(slot)
        position = parent_page.base + offset + CELL_HEADER_SIZE
        # repro: allow[PM001] the naive scheme's whole point is unprotected in-place stores
        self.pm.write_u32(position, new_child_no)
        self.pm.persist(position, 4)

    def defragment(self, page_no):
        with self.obs.span("defrag"):
            fresh = defragment_into(self.store, self.page(page_no))
        fresh_no = self.store.page_no_of(fresh)
        self._pages[fresh_no] = fresh
        # Naive semantics: apply the full view immediately.
        fresh.apply_header(fresh.pending_header_image())
        self.pm.persist(fresh.base, fresh.header_length())
        return fresh_no, fresh

    def _apply(self, page):
        """In-place header overwrite — *not* failure-atomic."""
        image = page.pending_header_image()
        page.apply_header(image)
        self.pm.flush_range(page.base, len(image))
        self.pm.sfence()


class NaiveEngine(Engine):
    """Unlogged in-place slotted paging (no crash atomicity)."""

    scheme = "naive"
    #: Sessions need rollback (lock conflicts abort transactions); the
    #: naive scheme has none, so it stays single-session by design.
    #: This also rules out MVCC snapshot reads (``read_only`` sessions):
    #: in-place header overwrites destroy the committed pre-images the
    #: version chains are built from.
    supports_sessions = False

    def _new_context(self, session=None):
        return NaiveContext(self)

    def _commit(self, ctx):
        with self.obs.phase("commit"):
            pass  # everything was already applied in place

    def _rollback(self, ctx):
        raise NotImplementedError(
            "the naive engine cannot roll back: changes are applied in "
            "place immediately (that is the point of the ablation)"
        )

    def recover(self):
        """Best effort only: collect orphans (free lists correct
        themselves lazily).  Torn headers are *not* detectable — see
        the ablation."""
        self.obs.inc("engine.recovery")
        if self.config.eager_recovery_gc:
            self.garbage_collect()
