"""Group commit: the per-engine epoch pipeline.

Every committing transaction historically paid its own sfence + 8-byte
commit mark.  With ``SystemConfig.group_commit`` on, a committing
transaction instead *stages* its durable stores (record writes and log
frames, written and flushed but **not fenced**) and then joins the
engine's open *epoch*.  The epoch closes — at the join that reaches
``group_commit_size`` members, at the first join after
``group_commit_window_ns`` simulated nanoseconds, or at an explicit
drain — with exactly ONE sfence covering every member's in-flight
lines and ONE ≤8-byte group commit mark whose (seq, tail) covers the
whole member prefix.  Recovery therefore sees the group atomically: a
crash before the mark loses every open member, a crash after it
replays all of them.  This is the amortization of "Persistent Memory
Transactions" (Marathe et al.) and "Hardware Transactional Persistent
Memory" (Giles et al.): fence and mark cost per transaction drops
roughly with the group size.

The pipeline itself is scheme-agnostic bookkeeping.  It holds:

* ``members`` — one record per joined commit ({"seq", "reclaims",
  "freed", ...}), whose post-mark housekeeping the engine defers to
  the close;
* ``pending_headers`` / ``pending_roots`` — the *visibility overlay*:
  slot-header images and root pointers that are redo-logged (and will
  be covered by the shared mark) but not yet applied to the pages.
  Fresh page fetches between join and close install these so every
  later transaction sees the members' committed state.

The engine supplies the actual close sequence (fence, mark, coalesced
checkpoint, deferred housekeeping) as the ``close`` callable; the
pipeline only decides *when* and guards against re-entry (a close that
triggers a checkpoint that would drain again).

Everything here runs under the cooperative scheduler: thresholds are
evaluated only at commit boundaries, so grouping is deterministic and
byte-identical across reruns.
"""


class EpochPipeline:
    """The open epoch of one engine (or of one shard's engine)."""

    def __init__(self, clock, size, window_ns, close):
        self.clock = clock
        #: Member count that forces a close at the join reaching it.
        self.size = max(1, size)
        #: Simulated-ns age forcing a close at the next join (0 = off).
        self.window_ns = window_ns
        self._close_fn = close
        self.members = []
        #: page_no -> latest member slot-header image (overlay).
        self.pending_headers = {}
        #: root slot -> latest member root pointer (overlay).
        self.pending_roots = {}
        self._opened_ns = None
        self._closing = False

    # ------------------------------------------------------------------
    # Joining
    # ------------------------------------------------------------------

    def join(self, member, headers=(), roots=()):
        """Enqueue one committed transaction onto the open epoch.

        ``member`` is the engine's deferred-housekeeping record (it
        must at least carry ``"seq"``); ``headers`` and ``roots`` are
        the member's visibility overlay entries — latest join wins, so
        two members touching the same page leave the second's image.
        """
        if self._opened_ns is None:
            self._opened_ns = self.clock.now_ns
        self.members.append(member)
        for page_no, image in headers:
            self.pending_headers[page_no] = image
        for slot, page_no in roots:
            self.pending_roots[slot] = page_no

    @property
    def member_count(self):
        return len(self.members)

    def contains_seq(self, seq):
        """Is the commit with sequence ``seq`` still awaiting its
        shared mark (i.e. not yet durable)?"""
        return any(member["seq"] == seq for member in self.members)

    def overlaid(self, page_no):
        """Does ``page_no`` carry an open-epoch member overlay?

        The tiered DRAM page cache bypasses overlaid pages entirely
        (``Engine._read_page``): their *visible* committed state is
        durable header + pending member image, while cached frames only
        ever hold durable images.  The overlay retires at the close,
        whose checkpoint invalidates the page's frame anyway."""
        return page_no in self.pending_headers

    def deferred_pages(self):
        """Pages whose frees are deferred to the close — committed-free
        but still referenced by the pre-epoch durable tree, so neither
        allocation nor GC may hand them out before the mark."""
        pages = set()
        for member in self.members:
            pages.update(member.get("freed", ()))
        return pages

    # ------------------------------------------------------------------
    # Closing
    # ------------------------------------------------------------------

    def should_close(self):
        """Threshold check, evaluated at commit boundaries only."""
        if not self.members:
            return False
        if len(self.members) >= self.size:
            return True
        return bool(
            self.window_ns
            and self.clock.now_ns - self._opened_ns >= self.window_ns
        )

    def maybe_close(self):
        if self.should_close():
            self.close()

    def drain(self):
        """Force-close the open epoch (end of run, explicit barrier)."""
        if self.members:
            self.close()

    def close(self):
        """Run the engine's close sequence once (re-entrancy guarded:
        a close whose checkpoint would drain again is a no-op)."""
        if self._closing or not self.members:
            return
        self._closing = True
        try:
            self._close_fn()
        finally:
            self._closing = False

    def take(self):
        """Hand the members over to the closing engine and reset.

        Called by the engine's close *after* the shared mark and the
        coalesced checkpoint have retired the overlay (the checkpoint
        itself still reads ``pending_headers`` while applying)."""
        members = self.members
        self.members = []
        self.pending_headers = {}
        self.pending_roots = {}
        self._opened_ns = None
        return members
