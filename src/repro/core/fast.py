"""FAST and FAST⁺: the paper's failure-atomic slotted-paging engines.

FAST (Section 4.1) commits every transaction through the slot-header
log: record bytes are written in place into page free space and
flushed during the page update; at commit the (small) slot headers of
all dirty pages are redo-logged, an 8-byte commit mark is persisted,
and the headers are immediately ("eagerly") checkpointed into the
pages so readers never consult the log.

FAST⁺ (Section 4.2) adds the in-place commit: when a transaction
modified exactly one page — the common case, a single-record insert —
the slot header fits one cache line (the leaf record cap is 28) and is
published with a single RTM transaction + flush; the header itself is
the commit mark and no logging happens at all.

Clock segments produced per transaction (mapped to the paper's bars):

    search                    Figure 6 "Search"
    page_update               Figure 6 "Page Update"
      in_place_record_insert    Figure 7
      clflush_record            Figure 7
      defrag                    Figure 7 "defragment(page)"
    commit                    Figure 6 "Commit"
      update_slot_header        Figure 7/8 (frame stores, unflushed)
      log_flush                 Figure 8 "Log Flush"
      atomic_commit             Figure 8 "Atomic 64B Write"
      checkpoint                Figure 8 "Checkpointing"
"""

from repro.core.base import Engine
from repro.core.config import FASTPLUS_LEAF_CAPACITY
from repro.core.epoch import EpochPipeline
from repro.htm.rtm import RTM
from repro.obs import trace as ev
from repro.pm.memory import CACHE_LINE
from repro.storage.defrag import defragment_into
from repro.wal.slot_header_log import SlotHeaderLog
from repro.wal.twopc import PrepareRegion


class FASTContext:
    """Transaction context implementing the B-tree mutation protocol
    with in-place record writes and deferred (logged) header commits."""

    def __init__(self, engine, session=None):
        self.engine = engine
        self.session = session
        self.store = engine.store
        self.pm = engine.pm
        self.clock = engine.pm.clock
        self.obs = engine.obs
        self.segment = self.clock.segment  # hot-path alias
        self._pages = {}
        self.dirty = {}        # page_no -> page whose header will be logged
        self.new_pages = {}    # page_no -> page created by this txn
        self.freed = []        # page_nos released once the txn commits
        self.reclaims = []     # (page, offset) cells dead once committed
        self.root_updates = {}
        # Every page this transaction obtained from the store and still
        # owns — what precise (session) rollback returns to the free
        # list and what GC must protect while the txn is open.
        self.allocated = []
        # In-place child-pointer swaps (durable immediately): recorded
        # as (address, old_child, new_child) so savepoint rollback can
        # reverse them — both directions are crash-safe because both
        # pages are committed-equivalent.
        self.pointer_swaps = []

    # -- view protocol ---------------------------------------------------

    def segment(self, name):
        return self.obs.span(name)

    def root_page_no(self, slot):
        if slot in self.root_updates:
            return self.root_updates[slot]
        return self.engine._root(slot)

    def page(self, page_no):
        page = self._pages.get(page_no)
        if page is None:
            page = self.engine._fetch_page(page_no)
            self._pages[page_no] = page
        return page

    # -- mutation protocol -------------------------------------------------

    def insert_record(self, page, slot, payload):
        with self.obs.span("in_place_record_insert"):
            offset = page.pending_insert(slot, payload)
        with self.obs.span("clflush_record"):
            page.flush_record(offset, len(payload))
        self._mark_dirty(page)
        return offset

    def update_record(self, page, slot, payload):
        old_offset = page.slot_offset(slot)
        with self.obs.span("in_place_record_insert"):
            offset = page.pending_update(slot, payload)
        with self.obs.span("clflush_record"):
            page.flush_record(offset, len(payload))
        self._mark_dirty(page)
        self.reclaims.append((page, old_offset))
        return offset

    def delete_record(self, page, slot):
        old_offset = page.slot_offset(slot)
        page.pending_delete(slot)
        self._mark_dirty(page)
        self.reclaims.append((page, old_offset))

    def allocate_page(self, page_type):
        page = self.store.allocate_page(page_type)
        page_no = self.store.page_no_of(page)
        self._pages[page_no] = page
        self.new_pages[page_no] = page
        self.allocated.append(page_no)
        return page_no, page

    def free_page(self, page_no):
        """Release a page once the transaction commits.

        The free is ALWAYS deferred — even for pages this transaction
        allocated — so no page is ever reused within a transaction:
        reuse would otherwise corrupt state through stale page objects
        (deferred cell reclaims, savepoint snapshots, reversed pointer
        swaps all reference the page by identity).
        """
        # Cells awaiting post-commit reclamation on this page die with it.
        self.reclaims = [
            (page, offset) for page, offset in self.reclaims
            if self.store.page_no_of(page) != page_no
        ]
        self.new_pages.pop(page_no, None)
        self.dirty.pop(page_no, None)
        self.freed.append(page_no)

    def set_root(self, slot, page_no):
        self.root_updates[slot] = page_no

    def overwrite_child_pointer(self, parent_page, slot, new_child_no):
        """The paper's in-place parent-pointer swap after copy-on-write
        (Section 4.3): one 8-byte-atomic u32 store + flush.  Safe at
        any crash instant because the new page's durable header is
        committed-equivalent to the old page's.

        The published page becomes reachable, so its pending header
        now commits through the log like any dirty page.
        """
        from repro.storage.slotted_page import CELL_HEADER_SIZE

        offset = parent_page.slot_offset(slot)
        position = parent_page.base + offset + CELL_HEADER_SIZE
        with self.obs.span("defrag"):
            old_child_no = self.pm.read_u32(position)
            # repro: allow[PM001] the paper's atomic pointer swap: one u32 store + immediate persist
            self.pm.write_u32(position, new_child_no)
            self.pm.persist(position, 4)
        self.pointer_swaps.append((position, old_child_no, new_child_no))
        # The swap changes the parent's committed content *without*
        # marking it dirty (no checkpoint will ever touch it), so the
        # DRAM cache must drop its frame here or serve the old child
        # pointer forever.
        self.engine._cache_invalidate(self.store.page_no_of(parent_page))
        if new_child_no in self.new_pages:
            self.dirty[new_child_no] = self.new_pages.pop(new_child_no)

    def defragment(self, page_no):
        with self.obs.span("defrag"):
            fresh = defragment_into(self.store, self.page(page_no))
        fresh_no = self.store.page_no_of(fresh)
        self._pages[fresh_no] = fresh
        self.new_pages[fresh_no] = fresh
        self.allocated.append(fresh_no)
        return fresh_no, fresh

    # -- savepoints --------------------------------------------------------

    def snapshot_state(self):
        """Capture the transaction's volatile state for a savepoint."""
        return {
            "pending": {
                page_no: page.clone_pending()
                for page_no, page in self._pages.items()
            },
            "dirty": set(self.dirty),
            "new_pages": set(self.new_pages),
            "freed": list(self.freed),
            "reclaims": list(self.reclaims),
            "root_updates": dict(self.root_updates),
            "swap_count": len(self.pointer_swaps),
        }

    def restore_state(self, snapshot):
        """Partial rollback to a savepoint snapshot.

        Pages allocated after the savepoint are released; pending
        headers are restored; record bytes written after the savepoint
        become free space (they were never reachable); durable
        child-pointer swaps are reversed (newest first).
        """
        while len(self.pointer_swaps) > snapshot["swap_count"]:
            position, old_child, _ = self.pointer_swaps.pop()
            # repro: allow[PM001] savepoint rollback reverses a pointer swap the same atomic way
            self.pm.write_u32(position, old_child)
            self.pm.persist(position, 4)
            # Reversing the swap is itself an in-place committed-content
            # change to the parent page — same coherence rule as the swap.
            self.engine._cache_invalidate(
                (position - self.store.base) // self.store.page_size
            )
        for page_no in list(self.new_pages):
            if page_no not in snapshot["new_pages"]:
                self.new_pages.pop(page_no)
                self._pages.pop(page_no, None)
                self.dirty.pop(page_no, None)
                self.store.free_page(page_no)
                # Returned to the store: the txn no longer owns it.
                self.allocated.remove(page_no)
        for page_no, page in list(self._pages.items()):
            if page_no not in snapshot["pending"]:
                if page.has_pending:
                    self.engine._discard_page_pending(page_no, page)
                self._pages.pop(page_no)
                continue
            page.restore_pending(snapshot["pending"][page_no])
        self.dirty = {
            page_no: self._pages[page_no] for page_no in snapshot["dirty"]
        }
        self.new_pages = {
            page_no: self._pages[page_no] for page_no in snapshot["new_pages"]
        }
        self.freed = list(snapshot["freed"])
        self.reclaims = list(snapshot["reclaims"])
        self.root_updates = dict(snapshot["root_updates"])

    # -- bookkeeping -------------------------------------------------------

    def uncommitted_pages(self):
        """Pages this open transaction owns (GC protection set)."""
        return set(self.allocated)

    def _mark_dirty(self, page):
        page_no = self.store.page_no_of(page)
        if page_no not in self.new_pages:
            self.dirty[page_no] = page

    @property
    def is_read_only(self):
        return not (self.dirty or self.new_pages or self.freed or self.root_updates)

    @property
    def is_single_page(self):
        """Eligible for the in-place commit: exactly one dirty page and
        no structural changes (paper Section 4.2's commit-time check)."""
        return (
            len(self.dirty) == 1
            and not self.new_pages
            and not self.freed
            and not self.root_updates
        )


class FASTEngine(Engine):
    """Slot-header logging for every transaction (Section 4.1)."""

    scheme = "fast"
    leaf_capacity = None  # record offset array can be arbitrarily large
    #: PM-resident committed state: reads may be served from the
    #: tiered DRAM page cache (``repro.storage.cache``), invalidated
    #: at the install points marked through this file.
    _page_cache_supported = True

    def __init__(self, config, pm, store):
        super().__init__(config, pm, store)
        self.log = None
        #: 2PC prepare region (sharded deployments only; see
        #: ``repro.wal.twopc`` / ``repro.storage.sharding``).
        self.twopc = None
        if config.group_commit:
            self.group = EpochPipeline(
                pm.clock, config.group_commit_size,
                config.group_commit_window_ns, self._close_epoch,
            )

    def _format(self):
        self.log = SlotHeaderLog.format(self.pm, self.config.log_base,
                                        self.config.log_bytes)
        if self.config.twopc_bytes:
            self.twopc = PrepareRegion.format(self.pm, self.config.twopc_base)

    def _attach_regions(self):
        self.log = SlotHeaderLog.attach(self.pm, self.config.log_base,
                                        self.config.log_bytes)
        if self.config.twopc_bytes:
            self.twopc = PrepareRegion.attach(self.pm, self.config.twopc_base)

    def _new_context(self, session=None):
        return FASTContext(self, session=session)

    # -- commit ------------------------------------------------------------

    def _commit(self, ctx):
        with self.obs.phase("commit"):
            if ctx.is_read_only:
                return
            # MVCC version publication must precede every header, log,
            # and checkpoint store: at this instant the durable pages
            # still hold the pre-transaction committed state (record
            # bytes sit in unreachable free space; headers apply at
            # checkpoint).  No-op unless a snapshot is active.
            versions = self._versions
            if versions is not None and versions.capture_active:
                versions.publish_pm_commit(ctx)
            self.commit_page_counts.append(len(ctx.dirty) + len(ctx.new_pages))
            with self.obs.span("misc"):
                self.clock.advance(self.pm.cost.pager_commit_ns)
            if self.group is not None:
                self._commit_grouped(ctx)
            else:
                self._commit_logged(ctx)

    def _commit_logged(self, ctx):
        """The slot-header logging commit (paper Figures 3-5)."""
        self._stage_and_flush(ctx)
        with self.obs.span("atomic_commit"):
            self.log.commit(self.next_seq())
        # Eager checkpoint: apply the logged headers to the pages right
        # away so other transactions never read the log (Section 3.3).
        with self.obs.span("checkpoint"):
            self._checkpoint(ctx)
        self._finish(ctx)

    def _commit_grouped(self, ctx):
        """Group commit: stage + flush this transaction's frames
        *without* the fence, join the open epoch, and let the size /
        window threshold decide when the shared fence and group mark
        retire the whole member prefix (``_close_epoch``)."""
        self._stage_and_flush(ctx, fence=False)
        self._join_epoch(ctx, self.next_seq())
        self.group.maybe_close()

    def _join_epoch(self, ctx, seq, **extra):
        """Enqueue a staged commit onto the open epoch: move its
        frames under the future group mark, record the deferred
        post-mark housekeeping, and install the visibility overlay so
        every later fetch sees this member's committed state."""
        member = {
            "seq": seq,
            "reclaims": [
                (self.store.page_no_of(page), offset)
                for page, offset in ctx.reclaims
            ],
            "freed": list(ctx.freed),
        }
        member.update(extra)
        headers = [
            (page_no, page.pending_header_image())
            for page_no, page in ctx.dirty.items()
        ]
        self.log.join_group()
        self.group.join(member, headers, ctx.root_updates.items())
        #: Surfaced to sessions: ``Session.commit_durable`` reports
        #: False until this seq's epoch closes.
        ctx.commit_seq = seq
        self.obs.inc("group.join")

    def _close_epoch(self):
        """Close the open epoch: ONE sfence makes every member's
        staged lines durable at once, ONE ≤8-byte group mark — the
        last member's seq, tail covering the whole prefix — commits
        them all, then the coalesced checkpoint and the members'
        deferred housekeeping (cell reclaims, page frees, 2PC record
        clears) run."""
        group = self.group
        with self.obs.span("log_flush"):
            self.pm.sfence()
        with self.obs.span("atomic_commit"):
            self.log.commit(group.members[-1]["seq"])
        with self.obs.span("checkpoint"):
            applied = self._apply_replay(self.log.replay(), self.store.page)
            self.pm.sfence()
            self.log.truncate()
            self.obs.inc("engine.checkpoint")
            self.obs.event(ev.CHECKPOINT, applied)
        members = group.take()
        for member in members:
            # Reclaims go through fresh page objects: the members' own
            # page handles still hold pre-close pending headers whose
            # free-list heads may be stale against the checkpointed
            # state when several members touched one page.
            for page_no, offset in member["reclaims"]:
                self.store.page(page_no).reclaim_cell(offset)
            for page_no in member["freed"]:
                self.store.free_page(page_no)
            if member.get("twopc_clear"):
                self.twopc.clear()
        self.obs.inc("group.close")

    def _stage_and_flush(self, ctx, fence=True):
        """Front half shared by the logged commit, the 2PC prepare,
        and the grouped commit: everything the commit mark will depend
        on is written and flushed.  With ``fence`` the lines are also
        fenced (a grouped member defers that to the epoch's shared
        fence)."""
        # New pages are unreachable until the commit mark, so their
        # headers are applied directly (Figure 4 step 3: the sibling is
        # fully built in place, never logged).
        with self.obs.span("new_page_headers"):
            for page in ctx.new_pages.values():
                if page.has_pending:
                    image = page.pending_header_image()
                    page.apply_header(image)
                    self.pm.flush_range(page.base, len(image))
        # Stage + store the slot-header frames (no flushes yet).
        with self.obs.span("update_slot_header"):
            for page_no, page in ctx.dirty.items():
                self.log.stage_page_header(page_no, page.pending_header_image())
            for slot, page_no in ctx.root_updates.items():
                self.log.stage_root_update(slot, page_no)
            self.log.write_frames()
        with self.obs.span("log_flush"):
            self.log.flush_frames()
            if fence:
                self.pm.sfence()

    # -- two-phase commit (sharded deployments only) -----------------------

    def prepare_commit(self, ctx, gtid, shard_index):
        """2PC phase one: persist this shard's redo frames and the
        prepare record, but *not* the commit word — the frames stay
        invisible until :meth:`commit_prepared` publishes them.
        Returns the log sequence number the commit will use."""
        with self.obs.phase("commit"):
            versions = self._versions
            if versions is not None and versions.capture_active:
                versions.publish_pm_commit(ctx)
            self.commit_page_counts.append(len(ctx.dirty) + len(ctx.new_pages))
            with self.obs.span("misc"):
                self.clock.advance(self.pm.cost.pager_commit_ns)
            self._stage_and_flush(ctx)
            seq = self.next_seq()
            self.twopc.prepare(gtid, seq, self.log.staged_bytes)
            self.obs.event(ev.TWOPC_PREPARE, gtid, shard_index)
            return seq

    def commit_prepared(self, ctx, gtid, seq, shard_index):
        """2PC phase two on one shard: publish the commit mark the
        prepare withheld, clear the prepare record, checkpoint.

        Under grouping the participant instead *joins* its shard's
        open epoch — the frames are already durable (the prepare
        fenced them), so the epoch's shared mark will publish them,
        and the prepare-record clear is deferred to the close (until
        then the record + coordinator decision are what recovery
        resolves an unmarked participant from)."""
        if self.group is not None:
            with self.obs.phase("commit"):
                self.obs.inc("twopc.commit")
                self.obs.event(ev.TWOPC_COMMIT, gtid, shard_index)
                self._join_epoch(ctx, seq, twopc_clear=True)
            return
        with self.obs.phase("commit"):
            with self.obs.span("atomic_commit"):
                self.log.commit(seq)
            self.obs.inc("twopc.commit")
            self.obs.event(ev.TWOPC_COMMIT, gtid, shard_index)
            # From the mark on, plain single-shard recovery suffices:
            # the prepare record has done its job.
            self.twopc.clear()
            with self.obs.span("checkpoint"):
                self._checkpoint(ctx)
            self._finish(ctx)

    def abort_prepared(self, ctx):
        """Back out of a prepare that will not commit (another shard
        failed to prepare): the frames are durable but unpublished, so
        dropping the staged state and clearing the record aborts."""
        self.log.discard()
        self.twopc.clear()

    def _checkpoint(self, ctx):
        applied = self._apply_replay(self.log.replay(), ctx.page)
        self.pm.sfence()
        self.log.truncate()
        self.obs.inc("engine.checkpoint")
        self.obs.event(ev.CHECKPOINT, applied)

    def _apply_replay(self, entries, fetch):
        """Apply committed log frames to the pages, coalescing the
        flushes: when several frames target the same page (epoch
        members) or the root-directory line (multi-root transactions),
        every store is applied in log order but only the *last* store
        of each target flushes its lines — one durable line set per
        target per checkpoint, all fenced by the caller.  A superseded
        frame longer than the final one still has its extra lines
        flushed (the final flush covers the widest image seen)."""
        entries = list(entries)
        last_flush = {}
        flush_len = {}
        for index, entry in enumerate(entries):
            if entry[0] == "page":
                key = entry[1]
                flush_len[key] = max(flush_len.get(key, 0), len(entry[2]))
            else:
                key = "roots"
            last_flush[key] = index
        applied = 0
        for index, entry in enumerate(entries):
            applied += 1
            if entry[0] == "page":
                _, page_no, image = entry
                page = fetch(page_no)
                page.apply_header(image)
                # The committed install point for logged commits, epoch
                # closes, and 2PC participant installs alike: the page's
                # durable header just changed, so any DRAM frame is stale.
                self._cache_invalidate(page_no)
                if last_flush[page_no] == index:
                    self.pm.flush_range(page.base, flush_len[page_no])
            else:
                _, slot, page_no = entry
                self.store.set_root(slot, page_no, persist=False)
                if last_flush["roots"] == index:
                    self.pm.flush_range(self.store.base, 64)
        return applied

    def _finish(self, ctx):
        """Post-commit housekeeping: reclaim dead cells, free pages.

        These touch only reconstructible state (free lists, the page
        free list), so they happen after the commit mark.
        """
        for page, offset in ctx.reclaims:
            page.reclaim_cell(offset)
        for page_no in ctx.freed:
            self.store.free_page(page_no)

    # -- rollback / recovery -------------------------------------------------

    def _discard_page_pending(self, page_no, page):
        """Drop a context's pending header on ``page``, returning it
        to *committed* state — which, while a group-commit epoch is
        open, is the member overlay rather than the durable header.
        The free list is rebuilt from the overlay's offsets so cells
        the rolled-back transaction wrote return to free space without
        handing back the member's live cells."""
        if self.group is not None:
            image = self.group.pending_headers.get(page_no)
            if image is not None:
                page.overlay_header(image)
                page.rebuild_free_list()
                return
        page.discard_pending()

    def _rollback(self, ctx):
        for page_no, page in list(ctx.dirty.items()):
            if page.has_pending:
                self._discard_page_pending(page_no, page)
        for page in list(ctx.new_pages.values()):
            if page.has_pending:
                page.discard_pending()
        self.log.discard()
        # Pages allocated by the transaction — including copy-on-write
        # pages whose parent pointer was already swapped in place (the
        # swap is durable but harmless: such pages expose only
        # committed content) — are reclaimed by reachability, exactly
        # like crash recovery does.
        self.garbage_collect(exclude_ctx=ctx)

    def _rollback_precise(self, ctx):
        """Session rollback: undo *this* transaction only.

        The single-session ``_rollback`` reclaims by reachability,
        which would also sweep up pages owned by other live sessions'
        open transactions.  Here everything is reversed from the
        context's own records instead: durable child-pointer swaps are
        un-swapped (newest first — both directions are crash-safe, the
        pages are committed-equivalent), pending header updates are
        discarded, the staged log is dropped, and every page the
        transaction obtained from the store goes back to the free list.
        """
        while ctx.pointer_swaps:
            position, old_child, _ = ctx.pointer_swaps.pop()
            # repro: allow[PM001] precise rollback reverses a pointer swap the same atomic way
            self.pm.write_u32(position, old_child)
            self.pm.persist(position, 4)
            # Same coherence rule as the forward swap: the parent's
            # committed content just changed in place.
            self._cache_invalidate(
                (position - self.store.base) // self.store.page_size
            )
        for page_no, page in list(ctx.dirty.items()):
            if page.has_pending:
                self._discard_page_pending(page_no, page)
        for page in list(ctx.new_pages.values()):
            if page.has_pending:
                page.discard_pending()
        self.log.discard()
        for page_no in reversed(ctx.allocated):
            self.store.free_page(page_no)
        ctx.allocated = []

    def recover(self):
        """Crash recovery (paper Section 4.4).

        * commit mark present -> replay the logged headers (idempotent
          checkpoint), then truncate;
        * no commit mark -> nothing to do: the pages' durable headers
          are the pre-transaction state and every partial record write
          sits in unreachable free space.

        Afterwards, leaked pages are garbage collected and in-page free
        lists are lazily rebuilt from the offset arrays.
        """
        self.obs.inc("engine.recovery")
        if self.log.pending_bytes():
            for entry in self.log.replay():
                self.obs.inc("engine.recovery.replayed")
                self.obs.event(ev.RECOVERY_REPLAY, entry[1])
                if entry[0] == "page":
                    _, page_no, image = entry
                    page = self.store.page(page_no)
                    page.apply_header(image)
                    # A fresh attach starts with an empty cache, but
                    # recovery can also be re-run on a live engine —
                    # replayed installs obey the same coherence rule.
                    self._cache_invalidate(page_no)
                    self.pm.flush_range(page.base, len(image))
                else:
                    _, slot, page_no = entry
                    self.store.set_root(slot, page_no, persist=False)
                    self.pm.flush_range(self.store.base, 64)
            self.pm.sfence()
            self.log.truncate()
        self._seq = self.log.committed_seq() + 1
        if self.config.eager_recovery_gc:
            self.garbage_collect()


class FASTPlusEngine(FASTEngine):
    """FAST plus the RTM in-place commit (Section 4.2).

    Single-page transactions publish their slot header with one RTM
    transaction followed by one flush + fence; everything else falls
    back to slot-header logging.  Leaf pages cap their offset array at
    28 records so the header always fits the RTM write set (one cache
    line); internal pages stay unlimited because internal updates only
    ever happen alongside a leaf split, which logs anyway.
    """

    scheme = "fastplus"
    leaf_capacity = FASTPLUS_LEAF_CAPACITY

    #: After this many transient RTM aborts the commit falls back to
    #: slot-header logging instead of retrying forever — the paper's
    #: alternative fallback policy (footnote 1).  ``None`` = retry
    #: until the hardware transaction succeeds.
    rtm_max_retries = 64

    def __init__(self, config, pm, store):
        super().__init__(config, pm, store)
        self.rtm = RTM(pm, max_write_lines=1)

    # Commit-path shares live in the shared registry (they survive
    # crash/attach cycles with the arena, like every other counter).

    @property
    def inplace_commits(self):
        return self.registry.value("engine.commit.inplace")

    @property
    def logged_commits(self):
        return self.registry.value("engine.commit.logged")

    @property
    def rtm_fallbacks(self):
        return self.registry.value("engine.commit.fallback")

    def _commit(self, ctx):
        with self.obs.phase("commit"):
            if ctx.is_read_only:
                return
            # Same publication point as FAST: before the RTM in-place
            # header publish or any logged-commit store.
            versions = self._versions
            if versions is not None and versions.capture_active:
                versions.publish_pm_commit(ctx)
            self.commit_page_counts.append(len(ctx.dirty) + len(ctx.new_pages))
            with self.obs.span("misc"):
                self.clock.advance(self.pm.cost.pager_commit_ns)
            # Grouping bypasses the in-place path entirely: an RTM
            # header publish is its own per-page commit mark and would
            # fence for itself, so grouped transactions always take
            # the logged path where the epoch can absorb them.
            if self.group is None and ctx.is_single_page:
                (page,) = ctx.dirty.values()
                image = page.pending_header_image()
                line_start = page.base - page.base % CACHE_LINE
                fits_line = (
                    page.base + len(image) <= line_start + CACHE_LINE
                )
                if fits_line:
                    self._commit_inplace(ctx, page)
                    return
            self.obs.inc("engine.commit.logged")
            if self.group is not None:
                self._commit_grouped(ctx)
            else:
                self._commit_logged(ctx)

    def _commit_inplace(self, ctx, page):
        """One RTM store of the header + one flush: optimal commit.

        If the best-effort hardware transaction keeps aborting, the
        commit falls back to slot-header logging (the page's pending
        header is still intact, so the logged path proceeds normally).
        """
        with self.obs.span("log_flush"):
            # The records flushed during the page update must be durable
            # before the header becomes visible.
            self.pm.sfence()
        fell_back = []

        def fall_back_to_logging():
            fell_back.append(True)

        with self.obs.span("atomic_commit"):
            page.commit_pending_inplace(
                self.rtm,
                max_retries=self.rtm_max_retries,
                fallback=fall_back_to_logging,
            )
        if fell_back:
            self.obs.inc("engine.commit.fallback")
            self.obs.inc("engine.commit.logged")
            self._commit_logged(ctx)
            return
        self.obs.inc("engine.commit.inplace")
        # The RTM publish IS the install: the page's durable header
        # changed without a checkpoint, so the frame dies here.
        self._cache_invalidate(self.store.page_no_of(page))
        self._finish(ctx)
