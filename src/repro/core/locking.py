"""Multi-granularity lock manager for concurrent sessions.

The session layer serializes conflicting transactions with classic
intent locking: a transaction takes an *intent* lock on the B-tree's
root slot (``IS`` to read, ``IX`` to write, ``X`` to repoint the root)
and then shared/exclusive latches on the individual pages it touches.
Locks are held to commit/rollback (strict two-phase locking), which is
what makes the cooperative scheduler's interleavings serializable in
commit order.

Everything here is *simulated-time* machinery: there are no host
threads, so a conflicting ``acquire`` never blocks — it raises
:class:`LockConflict` naming the holders, and the caller (normally the
:class:`repro.core.scheduler.Scheduler`) decides whether to wait,
retry, or abort.  Waiting sessions are registered with
:meth:`LockManager.start_wait`, which keeps the wait-for graph the
deadlock detector walks.

``LockingContext`` is the shim that puts the lock manager between a
session and ``PageStore``/``BTree``: it wraps an engine transaction
context, acquires the right latch before delegating each view/mutation
call, and forwards everything else untouched.  Single-session engines
never construct one, so the default code path pays nothing.

Read-only MVCC sessions (``engine.session(read_only=True)``) bypass
this module entirely: their transactions resolve reads against the
version chains (:mod:`repro.storage.versions`) with a pinned snapshot
timestamp, take no IS/S locks, never appear in the wait-for graph, and
can neither block nor be blocked by the lock-managed writers here.
The dynamic trace checker's TC107 rule enforces that: a session that
emitted ``snapshot_begin`` must emit zero ``lock_acquire`` events.
"""

from contextlib import contextmanager

from repro.obs import trace as ev

LOCK_IS = "IS"
LOCK_IX = "IX"
LOCK_S = "S"
LOCK_X = "X"

#: Stable numeric codes for packing lock events into trace integers.
_MODE_CODE = {LOCK_IS: 0, LOCK_IX: 1, LOCK_S: 2, LOCK_X: 3}
_MODE_NAME = {code: mode for mode, code in _MODE_CODE.items()}
_RES_CODE = {"root": 1, "page": 2}
_RES_NAME = {code: kind for kind, code in _RES_CODE.items()}


def encode_lock(resource, mode):
    """Pack a (resource, mode) pair into one trace integer.

    Layout: ``kind << 40 | id << 8 | mode`` — ids are page numbers or
    root slots, both far below 2**32, so the packing is lossless.
    """
    kind, ident = resource
    return (_RES_CODE[kind] << 40) | (ident << 8) | _MODE_CODE[mode]


def decode_lock(word):
    """Inverse of :func:`encode_lock`: ``((kind, id), mode)``."""
    resource = (_RES_NAME[word >> 40], (word >> 8) & 0xFFFF_FFFF)
    return resource, _MODE_NAME[word & 0xFF]

#: mode -> the set of modes it may coexist with (on other owners).
_COMPATIBLE = {
    LOCK_IS: frozenset((LOCK_IS, LOCK_IX, LOCK_S)),
    LOCK_IX: frozenset((LOCK_IS, LOCK_IX)),
    LOCK_S: frozenset((LOCK_IS, LOCK_S)),
    LOCK_X: frozenset(),
}

#: mode -> the weaker modes it subsumes (a holder of the key needs no
#: new lock to act in any listed mode).
_COVERS = {
    LOCK_IS: frozenset((LOCK_IS,)),
    LOCK_IX: frozenset((LOCK_IS, LOCK_IX)),
    LOCK_S: frozenset((LOCK_IS, LOCK_S)),
    LOCK_X: frozenset((LOCK_IS, LOCK_IX, LOCK_S, LOCK_X)),
}


def _upgrade(held, wanted):
    """Least mode subsuming both ``held`` and ``wanted`` (no SIX mode:
    the IX+S combination escalates straight to X)."""
    if wanted in _COVERS[held]:
        return held
    if held in _COVERS[wanted]:
        return wanted
    return LOCK_X


class LockError(Exception):
    """Base class for locking failures."""


class LockConflict(LockError):
    """The requested lock is incompatible with current holders.

    Raised instead of blocking (there are no host threads to block).
    ``resource``/``mode`` describe the request, ``holders`` the owner
    ids whose granted locks stand in the way.
    """

    def __init__(self, owner, resource, mode, holders):
        self.owner = owner
        self.resource = resource
        self.mode = mode
        self.holders = tuple(holders)
        super().__init__(
            "%r cannot lock %r in %s (held by %s)"
            % (owner, resource, mode, ", ".join(map(repr, self.holders)))
        )


class DeadlockError(LockError):
    """A wait-for cycle was found; ``cycle`` lists the owners on it."""

    def __init__(self, victim, cycle):
        self.victim = victim
        self.cycle = tuple(cycle)
        super().__init__(
            "deadlock: %s (victim %r)"
            % (" -> ".join(map(repr, self.cycle)), victim)
        )


class LockTimeout(LockError):
    """A session waited longer than the configured simulated timeout."""


def root_resource(slot):
    """The lockable resource for a named root slot."""
    return ("root", slot)


def page_resource(page_no):
    """The lockable resource for one page."""
    return ("page", page_no)


class LockManager:
    """Grants IS/IX/S/X locks to owners and tracks who waits on whom.

    Owners are opaque hashable ids (the session ids).  State is purely
    volatile — locks are a concurrency-control artifact, not a
    persistence one, and a crash discards them with the rest of the
    volatile state.
    """

    def __init__(self, *, obs=None):
        self.obs = obs
        self._granted = {}   # resource -> {owner: mode}
        self._owned = {}     # owner -> set of resources
        self._waits = {}     # owner -> (resource, mode)

    # -- grants ------------------------------------------------------------

    def acquire(self, owner, resource, mode):
        """Grant ``mode`` on ``resource`` (upgrading a held lock if
        needed) or raise :class:`LockConflict`.  Returns the mode now
        held."""
        granted = self._granted.get(resource)
        if granted is None:
            granted = self._granted[resource] = {}
        held = granted.get(owner)
        if held is not None:
            target = _upgrade(held, mode)
            if target == held:
                return held
        else:
            target = mode
        compatible = _COMPATIBLE[target]
        blockers = [
            other for other, other_mode in granted.items()
            if other != owner and other_mode not in compatible
        ]
        if blockers:
            if self.obs is not None:
                self.obs.inc("lock.conflict")
            raise LockConflict(owner, resource, mode, blockers)
        granted[owner] = target
        self._owned.setdefault(owner, set()).add(resource)
        if self.obs is not None:
            upgraded = held is not None
            self.obs.inc("lock.upgrade" if upgraded else "lock.acquire")
            self.obs.event(
                ev.LOCK_UPGRADE if upgraded else ev.LOCK_ACQUIRE,
                owner if isinstance(owner, int) else 0,
                encode_lock(resource, target),
            )
        return target

    def try_acquire(self, owner, resource, mode):
        """``acquire`` returning False instead of raising on conflict."""
        try:
            self.acquire(owner, resource, mode)
        except LockConflict:
            return False
        return True

    def holds(self, owner, resource):
        """The mode ``owner`` holds on ``resource`` (None if none)."""
        granted = self._granted.get(resource)
        return granted.get(owner) if granted else None

    def locks_of(self, owner):
        """{resource: mode} snapshot of everything ``owner`` holds."""
        return {
            resource: self._granted[resource][owner]
            for resource in self._owned.get(owner, ())
        }

    def release_all(self, owner):
        """Drop every lock and any registered wait of ``owner``
        (transaction end — strict 2PL releases in one step).  Returns
        the number of locks released."""
        resources = self._owned.pop(owner, None)
        released = 0
        obs = self.obs
        sid = owner if isinstance(owner, int) else 0
        if resources:
            # Sorted release order keeps the emitted event sequence
            # deterministic across processes (set iteration order of
            # ("page", n) tuples depends on string hash seeds).
            for resource in sorted(resources):
                granted = self._granted.get(resource)
                if granted is None:
                    continue
                mode = granted.pop(owner, None)
                if mode is None:
                    continue
                released += 1
                if not granted:
                    del self._granted[resource]
                if obs is not None:
                    obs.event(ev.LOCK_RELEASE, sid, encode_lock(resource, mode))
        self._waits.pop(owner, None)
        if released and obs is not None:
            obs.inc("lock.release", released)
        return released

    @contextmanager
    def commit_scope(self, owner, *, clock=None):
        """Scoped commit-time acquisition for OCC installs.

        Everything ``owner`` acquires inside the scope is released when
        it exits — success, conflict, or crash of the install path —
        and the simulated span the locks were held is accounted to
        ``occ.lock_hold_ns``.  This is the only lock traffic an OCC
        transaction generates: zero acquisitions before its commit
        point (TC109), a write-set-sized burst inside the scope.
        """
        start = clock.now_ns if clock is not None else 0.0
        try:
            yield self
        finally:
            if clock is not None and self.obs is not None:
                held = clock.now_ns - start
                if held > 0:
                    self.obs.inc("occ.lock_hold_ns", int(held))
            self.release_all(owner)

    # -- wait-for graph ----------------------------------------------------

    def start_wait(self, owner, resource, mode):
        """Register that ``owner`` is waiting to lock ``resource``."""
        self._waits[owner] = (resource, mode)
        if self.obs is not None:
            self.obs.event(
                ev.LOCK_WAIT,
                owner if isinstance(owner, int) else 0,
                encode_lock(resource, mode),
            )

    def stop_wait(self, owner):
        """Remove ``owner``'s registered wait (woken or aborted)."""
        if self._waits.pop(owner, None) is not None and self.obs is not None:
            self.obs.event(
                ev.LOCK_WAKE, owner if isinstance(owner, int) else 0
            )

    def waiting(self, owner):
        """The (resource, mode) ``owner`` waits for, or None."""
        return self._waits.get(owner)

    def blockers(self, owner, resource, mode):
        """Owners whose granted locks block ``owner``'s request."""
        granted = self._granted.get(resource)
        if not granted:
            return ()
        held = granted.get(owner)
        target = mode if held is None else _upgrade(held, mode)
        compatible = _COMPATIBLE[target]
        return tuple(
            other for other, other_mode in granted.items()
            if other != owner and other_mode not in compatible
        )

    def wait_edges(self):
        """The wait-for graph: {waiter: (blocking owners...)}."""
        return {
            owner: self.blockers(owner, resource, mode)
            for owner, (resource, mode) in self._waits.items()
        }

    def find_deadlock(self, owner):
        """Walk the wait-for graph from ``owner``; return the cycle
        through ``owner`` as an owner list, or None.

        Deterministic: edges are expanded in grant-insertion order, so
        identical histories find identical cycles.
        """
        return find_cycle(self.wait_edges(), owner)


def find_cycle(edges, owner):
    """The cycle through ``owner`` in the wait-for graph ``edges``
    ({waiter: (blockers...)}), as an owner list, or None.  Shared by
    :meth:`LockManager.find_deadlock` and the sharded lock facade
    (which merges per-shard edges before searching)."""
    path = [owner]
    on_path = {owner}
    visited = set()

    def visit(node):
        for blocker in edges.get(node, ()):
            if blocker == owner:
                return True
            if blocker in on_path or blocker in visited:
                continue
            if blocker in edges:
                path.append(blocker)
                on_path.add(blocker)
                if visit(blocker):
                    return True
                on_path.discard(path.pop())
            visited.add(blocker)
        return False

    if visit(owner):
        return list(path)
    return None


class LockingContext:
    """A transaction context proxy that latches before delegating.

    Sits between a :class:`repro.core.session.Session` and the
    scheme context (FAST/FAST⁺/NVWAL): reads take S page latches,
    mutations take X, root-pointer updates take X on the root slot.
    Attributes and methods outside the view/mutation protocol are
    forwarded to the wrapped context, so the commit paths (which
    receive the *inner* context) see the exact objects they always did.

    ``op_mutated`` tracks whether the current top-level operation has
    already changed transaction state; the scheduler uses it to decide
    between waiting (operation restart is safe — only reads happened)
    and aborting the transaction (a partial mutation cannot be
    re-issued).
    """

    def __init__(self, inner, session):
        # Avoid __setattr__ recursion by writing through __dict__.
        self.__dict__["_inner"] = inner
        self.__dict__["_session"] = session
        self.__dict__["_locks"] = session.lock_manager
        self.__dict__["_owner"] = session.sid
        self.__dict__["_store"] = session.engine.store
        # Sharded sessions namespace their resource ids (shard << 24)
        # so per-shard locks stay distinct in a merged wait-for graph.
        self.__dict__["_ns"] = session.resource_namespace
        self.__dict__["op_mutated"] = False

    # -- lock plumbing ----------------------------------------------------

    def begin_op(self):
        """Mark the start of a top-level operation (insert/search/...)."""
        self.__dict__["op_mutated"] = False

    def _lock(self, resource, mode):
        self._locks.acquire(self._owner, resource, mode)

    def lock_root(self, slot, mode):
        """Intent lock on a tree's root slot (taken per operation)."""
        self._locks.acquire(
            self._owner, root_resource(self._ns | slot), mode
        )

    def _page_no(self, page):
        page_no = getattr(page, "page_no", None)
        if page_no is not None:
            return page_no  # NVWAL's DRAM frames carry their number
        return self._store.page_no_of(page)

    def _xlock_page(self, page):
        self._locks.acquire(
            self._owner, page_resource(self._ns | self._page_no(page)), LOCK_X
        )

    # -- view protocol -----------------------------------------------------

    def segment(self, name):
        return self._inner.segment(name)

    def root_page_no(self, slot):
        return self._inner.root_page_no(slot)

    def page(self, page_no):
        self._lock(page_resource(self._ns | page_no), LOCK_S)
        return self._inner.page(page_no)

    # -- mutation protocol -------------------------------------------------

    def insert_record(self, page, slot, payload):
        self._xlock_page(page)
        offset = self._inner.insert_record(page, slot, payload)
        self.__dict__["op_mutated"] = True
        return offset

    def update_record(self, page, slot, payload):
        self._xlock_page(page)
        offset = self._inner.update_record(page, slot, payload)
        self.__dict__["op_mutated"] = True
        return offset

    def delete_record(self, page, slot):
        self._xlock_page(page)
        self._inner.delete_record(page, slot)
        self.__dict__["op_mutated"] = True

    def allocate_page(self, page_type):
        page_no, page = self._inner.allocate_page(page_type)
        # A fresh page is uncontended: the grant cannot conflict.
        self._lock(page_resource(self._ns | page_no), LOCK_X)
        self.__dict__["op_mutated"] = True
        return page_no, page

    def free_page(self, page_no):
        self._lock(page_resource(self._ns | page_no), LOCK_X)
        self._inner.free_page(page_no)
        self.__dict__["op_mutated"] = True

    def set_root(self, slot, page_no):
        self._lock(root_resource(self._ns | slot), LOCK_X)
        self._inner.set_root(slot, page_no)
        self.__dict__["op_mutated"] = True

    def overwrite_child_pointer(self, parent_page, slot, new_child_no):
        self._xlock_page(parent_page)
        self._inner.overwrite_child_pointer(parent_page, slot, new_child_no)
        self.__dict__["op_mutated"] = True

    def defragment(self, page_no):
        self._lock(page_resource(self._ns | page_no), LOCK_X)
        fresh_no, fresh = self._inner.defragment(page_no)
        self._lock(page_resource(self._ns | fresh_no), LOCK_X)
        self.__dict__["op_mutated"] = True
        return fresh_no, fresh

    # -- passthrough -------------------------------------------------------

    @property
    def inner(self):
        """The wrapped scheme context (what the commit paths consume)."""
        return self._inner

    def __getattr__(self, name):
        return getattr(self.__dict__["_inner"], name)

    def __setattr__(self, name, value):
        if name in self.__dict__:
            self.__dict__[name] = value
        else:
            setattr(self.__dict__["_inner"], name, value)
