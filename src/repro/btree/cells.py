"""Record-cell encodings for B+-tree pages.

Leaf cell payload::

    u16 key_len | key bytes | value bytes

Internal cell payload (child pointer FIRST)::

    u32 child page number | u16 key_len | key bytes

An internal page with ``n`` children stores ``n`` cells in key order;
the last cell is the *rightmost* child, marked by the reserved key
length ``RIGHTMOST_KEY_LEN`` and carrying no key: it routes every key
greater than all separators.  Each non-rightmost cell ``(k, c)`` routes
keys ``<= k`` (the paper stores "the largest key in the left sibling
page" as the separator, Figure 4 step 4).

Why child-first: copy-on-write defragmentation swaps a parent's child
pointer *in place* (paper Section 4.3).  That 4-byte store is only
crash-safe if it falls inside one failure-atomic 8-byte word, which the
B-tree guarantees by (a) placing the pointer at the start of the cell
payload and (b) allocating internal-page cells 8-byte aligned (cell
header is 4 bytes, so the pointer occupies bytes 4..8 of an aligned
word).
"""

RIGHTMOST_KEY_LEN = 0xFFFF
_MAX_KEY_LEN = 0x7FF0

#: High bit of the leaf key-length field marks an overflow cell: the
#: value's tail lives in a chain of overflow pages (like SQLite's
#: payload spilling), and the local payload carries
#: ``u32 total_value_len | u32 chain_head_page`` after the key.
OVERFLOW_FLAG = 0x8000

#: Cell-allocation alignment for internal pages (see module docstring).
INTERNAL_CELL_ALIGN = 8

#: Byte offset of the u32 child pointer within an internal cell payload.
CHILD_POINTER_OFFSET = 0


def leaf_cell(key, value):
    """Encode a leaf record."""
    if len(key) > _MAX_KEY_LEN:
        raise ValueError("key too long (%d bytes)" % len(key))
    return len(key).to_bytes(2, "little") + key + value


def parse_leaf(payload):
    """Decode an *inline* leaf record -> (key, value).

    Raises if the cell is an overflow cell (callers that may encounter
    spilled records use ``parse_leaf_any`` / the B-tree's readers).
    """
    key_len = int.from_bytes(payload[:2], "little")
    if key_len & OVERFLOW_FLAG:
        raise ValueError("overflow cell: use parse_leaf_any")
    return payload[2 : 2 + key_len], payload[2 + key_len :]


def leaf_key(payload):
    """Just the key of a leaf record (cheaper comparisons)."""
    key_len = int.from_bytes(payload[:2], "little") & ~OVERFLOW_FLAG
    return payload[2 : 2 + key_len]


def overflow_leaf_cell(key, value_prefix, total_value_len, chain_head):
    """Encode a leaf record whose value tail is spilled to an overflow
    chain starting at page ``chain_head``."""
    if len(key) > _MAX_KEY_LEN:
        raise ValueError("key too long (%d bytes)" % len(key))
    return (
        (len(key) | OVERFLOW_FLAG).to_bytes(2, "little")
        + key
        + total_value_len.to_bytes(4, "little")
        + chain_head.to_bytes(4, "little")
        + value_prefix
    )


def parse_leaf_any(payload):
    """Decode either kind of leaf record.

    Returns ``(key, value, None)`` for inline records, or
    ``(key, value_prefix, (total_value_len, chain_head))`` for
    overflow records.
    """
    raw_len = int.from_bytes(payload[:2], "little")
    key_len = raw_len & ~OVERFLOW_FLAG
    key = payload[2 : 2 + key_len]
    if not raw_len & OVERFLOW_FLAG:
        return key, payload[2 + key_len :], None
    cursor = 2 + key_len
    total = int.from_bytes(payload[cursor : cursor + 4], "little")
    head = int.from_bytes(payload[cursor + 4 : cursor + 8], "little")
    return key, payload[cursor + 8 :], (total, head)


def is_overflow_cell(payload):
    return bool(int.from_bytes(payload[:2], "little") & OVERFLOW_FLAG)


def internal_cell(key, child):
    """Encode an internal separator cell; ``key=None`` = rightmost."""
    prefix = child.to_bytes(4, "little")
    if key is None:
        return prefix + RIGHTMOST_KEY_LEN.to_bytes(2, "little")
    if len(key) > _MAX_KEY_LEN:
        raise ValueError("key too long (%d bytes)" % len(key))
    return prefix + len(key).to_bytes(2, "little") + key


def parse_internal(payload):
    """Decode an internal cell -> (key or None, child page number)."""
    child = int.from_bytes(payload[:4], "little")
    key_len = int.from_bytes(payload[4:6], "little")
    if key_len == RIGHTMOST_KEY_LEN:
        return None, child
    return payload[6 : 6 + key_len], child
