"""B+-tree over failure-atomic slotted pages (paper Section 4).

The tree mirrors the SQLite B-tree the paper modifies: variable-length
records in slotted pages, splits that allocate a *left sibling* for the
smaller keys (paper Figures 4-5), and copy-on-write defragmentation.

All mutation is routed through a transaction-context protocol (see
``repro.btree.btree``) so the same tree code runs under every commit
scheme the paper evaluates — FAST, FAST⁺, NVWAL — as well as the
deliberately unsafe direct-write baseline used by the atomicity
ablation.
"""

from repro.btree.cells import (
    RIGHTMOST_KEY_LEN,
    internal_cell,
    leaf_cell,
    parse_internal,
    parse_leaf,
)
from repro.btree.btree import BTree, DuplicateKeyError
from repro.btree.direct import DirectContext

__all__ = [
    "BTree",
    "DirectContext",
    "DuplicateKeyError",
    "RIGHTMOST_KEY_LEN",
    "internal_cell",
    "leaf_cell",
    "parse_internal",
    "parse_leaf",
]
