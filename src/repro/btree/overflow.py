"""Overflow-page chains for large values (SQLite-style spilling).

A value too large for its leaf page keeps a local prefix in the leaf
cell and spills the tail to a chain of overflow pages.  An overflow
page reuses the slotted page's 8-byte fixed header (so its type byte
says ``PAGE_OVERFLOW`` and garbage collection recognises it) followed
by::

    +8   u32  next overflow page (0 = end of chain)
    +12  u16  data length in this page
    +14  u16  reserved
    +16  data ...

Crash safety follows the paper's free-space argument: overflow pages
are freshly allocated, written and flushed *before* the transaction's
commit mark, and are unreachable until the leaf cell referencing them
commits — a crash leaves only collectable orphans.  Chains are
immutable once written; deleting or replacing the record frees them
after commit.
"""

from repro.storage.slotted_page import PAGE_OVERFLOW

_OFF_NEXT = 8
_OFF_LEN = 12
_OFF_DATA = 16


def page_capacity(page_size):
    """Value bytes one overflow page holds."""
    return page_size - _OFF_DATA


def max_local_payload(page_size):
    """Largest leaf-cell payload stored fully inline.

    Like SQLite's table B-trees, spilling starts only when the cell
    would (nearly) monopolise the page — smaller records stay inline
    even if that means few records per leaf, because a tiny spilled
    tail would waste an almost-empty overflow page.
    """
    return max(64, page_size - 128)


def local_payload_after_spill(page_size):
    """Inline payload kept when a record does spill (~a quarter page,
    so the leaf still holds several cells and chain pages run full)."""
    return max(64, page_size // 4)


def write_chain(ctx, tail):
    """Spill ``tail`` into a fresh overflow chain; returns the head
    page number.  Pages are written and flushed immediately (they must
    be durable before the commit mark that publishes the leaf cell)."""
    assert tail, "never spill an empty tail"
    head_no = 0
    previous = None
    offset = 0
    while offset < len(tail):
        page_no, page = ctx.allocate_page(PAGE_OVERFLOW)
        chunk = tail[offset : offset + page_capacity(page.page_size)]
        pm = page.pm
        pm.write_u32(page.base + _OFF_NEXT, 0)
        pm.write_u16(page.base + _OFF_LEN, len(chunk))
        pm.write(page.base + _OFF_DATA, chunk)
        pm.flush_range(page.base + _OFF_NEXT, _OFF_DATA - _OFF_NEXT + len(chunk))
        if previous is None:
            head_no = page_no
        else:
            previous.pm.write_u32(previous.base + _OFF_NEXT, page_no)
            previous.pm.flush_range(previous.base + _OFF_NEXT, 4)
        previous = page
        offset += len(chunk)
    return head_no


def read_chain(view, head_no):
    """Reassemble a chain's value tail."""
    out = bytearray()
    page_no = head_no
    while page_no:
        page = view.page(page_no)
        pm = page.pm
        length = pm.read_u16(page.base + _OFF_LEN)
        out += pm.read(page.base + _OFF_DATA, length)
        page_no = pm.read_u32(page.base + _OFF_NEXT)
    return bytes(out)


def chain_page_nos(view, head_no):
    """Page numbers of a chain, head first."""
    pages = []
    page_no = head_no
    while page_no:
        pages.append(page_no)
        page = view.page(page_no)
        page_no = page.pm.read_u32(page.base + _OFF_NEXT)
    return pages


def free_chain(ctx, head_no):
    """Release every page of a chain (deferred to commit by the ctx)."""
    for page_no in chain_page_nos(ctx, head_no):
        ctx.free_page(page_no)
