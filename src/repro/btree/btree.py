"""Scheme-agnostic B+-tree on failure-atomic slotted pages.

The tree never touches persistent memory directly: every read goes
through a *view* and every mutation through a *transaction context*,
both duck-typed.  The commit schemes (FAST, FAST⁺, NVWAL, the unsafe
direct baseline) provide these objects, which is what lets one tree
implementation run under every recovery scheme the paper compares.

View protocol (read path)::

    view.root_page_no(slot) -> int
    view.page(page_no) -> SlottedPage      # pending overlay included

Context protocol (mutation path) — extends the view protocol::

    ctx.insert_record(page, slot, payload) -> offset
    ctx.update_record(page, slot, payload) -> offset
    ctx.delete_record(page, slot)
    ctx.allocate_page(page_type) -> (page_no, SlottedPage)
    ctx.free_page(page_no)                 # deferred to post-commit
    ctx.set_root(slot, page_no)            # atomic with the commit
    ctx.defragment(page_no) -> (new_no, new_page)

Structural notes (paper Section 4):

* splits allocate a *left sibling* that receives the smaller keys,
  leaving the original page (and its committed cells) in place —
  Figure 4's algorithm;
* the separator pushed into the parent is the largest key of the left
  sibling;
* a page whose total free space suffices but is fragmented is rewritten
  copy-on-write and the parent's child pointer is swapped as part of
  the same transaction (Section 4.3);
* structural changes restart the insert from the root — the context's
  page cache keeps the pending view consistent across restarts.
"""

from contextlib import nullcontext

from repro.btree import overflow
from repro.btree.cells import (
    internal_cell,
    is_overflow_cell,
    leaf_cell,
    leaf_key,
    overflow_leaf_cell,
    parse_internal,
    parse_leaf_any,
)
from repro.storage.slotted_page import PAGE_INTERNAL, PAGE_LEAF, PageFullError

_MAX_RESTARTS = 32


def _segment(view, name):
    """The view's clock segment, if it measures phases (paper Section 5
    splits insertion time into Search / Page Update / Commit)."""
    opener = getattr(view, "segment", None)
    return opener(name) if opener is not None else nullcontext()


class DuplicateKeyError(KeyError):
    """INSERT of a key that already exists (without replace)."""


class _PathEntry:
    """One step of a root-to-leaf descent."""

    __slots__ = ("page_no", "page", "parent_slot")

    def __init__(self, page_no, page, parent_slot):
        self.page_no = page_no
        self.page = page
        self.parent_slot = parent_slot


class BTree:
    """A B+-tree identified by a root-pointer slot in the page store.

    Args:
        root_slot: which named root pointer of the ``PageStore`` holds
            this tree's root page number.
        leaf_capacity: max records per leaf (FAST⁺ uses 28 so the leaf
            slot-header fits one cache line; ``None`` = space-limited).
        internal_capacity: max cells per internal page (``None`` for
            both schemes — the paper keeps internal headers unlimited
            and always logs them).
    """

    def __init__(self, *, root_slot=0, leaf_capacity=None, internal_capacity=None):
        self.root_slot = root_slot
        self.leaf_capacity = leaf_capacity
        self.internal_capacity = internal_capacity

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def create(self, ctx):
        """Allocate an empty root leaf and point the root slot at it."""
        page_no, _ = ctx.allocate_page(PAGE_LEAF)
        ctx.set_root(self.root_slot, page_no)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def search(self, view, key):
        """Value stored under ``key``, or ``None``."""
        with _segment(view, "search"):
            leaf = self._descend(view, key)[-1].page
            found, slot = self._leaf_search(leaf, key)
            if not found:
                return None
            return self._read_value(view, leaf.record(slot))

    def _read_value(self, view, payload):
        """A leaf cell's full value, following any overflow chain."""
        _, value, spilled = parse_leaf_any(payload)
        if spilled is None:
            return value
        total, head = spilled
        value = value + overflow.read_chain(view, head)
        assert len(value) == total, "overflow chain length mismatch"
        return value

    def contains(self, view, key):
        with _segment(view, "search"):
            leaf = self._descend(view, key)[-1].page
            return self._leaf_search(leaf, key)[0]

    def scan(self, view, lo=None, hi=None):
        """Yield ``(key, value)`` in key order for lo <= key <= hi."""
        root = view.root_page_no(self.root_slot)
        if root:
            yield from self._scan_page(view, root, lo, hi)

    def scan_desc(self, view, lo=None, hi=None):
        """Yield ``(key, value)`` in descending key order."""
        root = view.root_page_no(self.root_slot)
        if root:
            yield from self._scan_page_desc(view, root, lo, hi)

    def count(self, view):
        """Number of records in the tree."""
        return sum(1 for _ in self.scan(view))

    def height(self, view):
        """Number of levels (1 = a single leaf)."""
        levels = 1
        page = self._typed_page(view, view.root_page_no(self.root_slot))
        while page.page_type == PAGE_INTERNAL:
            levels += 1
            _, child = parse_internal(page.record(0))
            page = self._typed_page(view, child)
        return levels

    def reachable_pages(self, view):
        """Page numbers of every page in the tree, including overflow
        chains (for GC)."""
        pages = set()
        stack = [view.root_page_no(self.root_slot)]
        while stack:
            page_no = stack.pop()
            if not page_no or page_no in pages:
                continue
            pages.add(page_no)
            page = self._typed_page(view, page_no)
            if page.page_type == PAGE_INTERNAL:
                for payload in page.records():
                    stack.append(parse_internal(payload)[1])
            else:
                for payload in page.records():
                    if is_overflow_cell(payload):
                        _, _, (_, head) = parse_leaf_any(payload)
                        stack.extend(overflow.chain_page_nos(view, head))
        return pages

    def verify(self, view):
        """Check structural invariants; returns the record count.

        Raises ``AssertionError`` on: unsorted keys, separator bounds
        violated, malformed rightmost cells, or uneven leaf depth.
        """
        root = view.root_page_no(self.root_slot)
        leaf_depths = set()
        count = self._verify_page(view, root, None, None, 0, leaf_depths)
        assert len(leaf_depths) <= 1, "leaves at differing depths: %s" % leaf_depths
        return count

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, ctx, key, value, *, replace=False):
        """Insert ``key -> value``; with ``replace`` update an existing
        key out-of-place instead of raising ``DuplicateKeyError``."""
        payload = leaf_cell(key, value)
        spilled = False
        for _ in range(_MAX_RESTARTS):
            with _segment(ctx, "search"):
                path = self._descend(ctx, key)
                leaf = path[-1]
                found, slot = self._leaf_search(leaf.page, key)
            with _segment(ctx, "page_update"):
                if not spilled:
                    payload = self._maybe_spill(
                        ctx, key, value, payload, leaf.page.page_size
                    )
                    spilled = True
                if found:
                    if not replace:
                        raise DuplicateKeyError(repr(key))
                    self._free_overflow_of(ctx, leaf.page.record(slot))
                    if self._replace(ctx, path, slot, payload):
                        return
                    continue
                if self._try_insert(ctx, path, slot, payload):
                    return
        raise PageFullError("insert of %d-byte record did not converge" % len(payload))

    def _maybe_spill(self, ctx, key, value, payload, page_size):
        """Spill a too-large value's tail to an overflow chain (done
        once, after the duplicate check cannot reject the insert)."""
        if len(payload) <= overflow.max_local_payload(page_size):
            return payload
        local_room = overflow.local_payload_after_spill(page_size) - (
            2 + len(key) + 8
        )
        if local_room < 0:
            from repro.storage.slotted_page import RecordTooLargeError

            raise RecordTooLargeError(
                "key of %d bytes leaves no room in a %d-byte page"
                % (len(key), page_size)
            )
        prefix, tail = value[:local_room], value[local_room:]
        head = overflow.write_chain(ctx, tail)
        return overflow_leaf_cell(key, prefix, len(value), head)

    def _free_overflow_of(self, ctx, payload):
        """Queue an outgoing record's overflow chain for release."""
        if is_overflow_cell(payload):
            _, _, (_, head) = parse_leaf_any(payload)
            overflow.free_chain(ctx, head)

    def update(self, ctx, key, value):
        """Out-of-place update of an existing key; False if absent."""
        if not self.contains(ctx, key):
            return False
        self.insert(ctx, key, value, replace=True)
        return True

    def delete(self, ctx, key):
        """Delete ``key``; returns False if it was not present.

        A leaf emptied by the deletion is unlinked from its parent and
        freed (and an internal root left with a single child collapses),
        so delete-heavy workloads return pages to the store.
        """
        with _segment(ctx, "search"):
            path = self._descend(ctx, key)
            leaf = path[-1]
            found, slot = self._leaf_search(leaf.page, key)
        if not found:
            return False
        with _segment(ctx, "page_update"):
            self._free_overflow_of(ctx, leaf.page.record(slot))
            ctx.delete_record(leaf.page, slot)
            if leaf.page.nrecords == 0 and len(path) > 1:
                self._unlink_empty_leaf(ctx, path)
        return True

    def _unlink_empty_leaf(self, ctx, path):
        """Drop an empty leaf's cell from its parent and free the page
        (all through pending operations, so it commits atomically)."""
        leaf = path[-1]
        parent = path[-2]
        slot = leaf.parent_slot
        nrec = parent.page.nrecords
        if slot == nrec - 1:
            # The empty leaf is the rightmost child: promote the
            # previous child to rightmost and drop its old cell.
            if nrec < 2:
                return  # a lone child: keep the leaf as the catch-all
            _, prev_child = parse_internal(parent.page.record(slot - 1))
            try:
                ctx.update_record(parent.page, slot, internal_cell(None, prev_child))
            except PageFullError:
                return  # no room for the rewrite: harmless to keep
            ctx.delete_record(parent.page, slot - 1)
        else:
            ctx.delete_record(parent.page, slot)
        ctx.free_page(leaf.page_no)
        self._maybe_collapse_root(ctx, path)

    def _maybe_collapse_root(self, ctx, path):
        """An internal root with a single (rightmost) child hands the
        root role to that child."""
        root = path[0]
        if root.page.page_type != PAGE_INTERNAL or root.page.nrecords != 1:
            return
        _, only_child = parse_internal(root.page.record(0))
        ctx.set_root(self.root_slot, only_child)
        ctx.free_page(root.page_no)

    # ------------------------------------------------------------------
    # Descent helpers
    # ------------------------------------------------------------------

    def _typed_page(self, view, page_no):
        page = view.page(page_no)
        if page.page_type == PAGE_LEAF:
            page.header_capacity = self.leaf_capacity
        else:
            page.header_capacity = self.internal_capacity
        return page

    def _descend(self, view, key):
        path = []
        page_no = view.root_page_no(self.root_slot)
        parent_slot = None
        while True:
            page = self._typed_page(view, page_no)
            path.append(_PathEntry(page_no, page, parent_slot))
            if page.page_type == PAGE_LEAF:
                return path
            parent_slot = self._child_slot(page, key)
            _, page_no = parse_internal(page.record(parent_slot))

    def _leaf_search(self, page, key):
        """Binary search a leaf -> (found, slot)."""
        lo, hi = 0, page.nrecords
        while lo < hi:
            mid = (lo + hi) // 2
            mid_key = leaf_key(page.record(mid))
            if mid_key < key:
                lo = mid + 1
            elif mid_key > key:
                hi = mid
            else:
                return True, mid
        return False, lo

    def _child_slot(self, page, key):
        """Slot of the internal cell routing ``key`` (rightmost wins)."""
        nrec = page.nrecords
        lo, hi = 0, nrec - 1  # the last cell is the rightmost catch-all
        while lo < hi:
            mid = (lo + hi) // 2
            sep, _ = parse_internal(page.record(mid))
            if sep is not None and sep < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # Insert machinery
    # ------------------------------------------------------------------

    def _try_insert(self, ctx, path, slot, payload):
        """One attempt to place ``payload``; False asks for a restart."""
        leaf = path[-1]
        try:
            ctx.insert_record(leaf.page, slot, payload)
            return True
        except PageFullError as err:
            self._make_room(ctx, path, len(path) - 1, len(payload), err)
            return False

    def _replace(self, ctx, path, slot, payload):
        leaf = path[-1]
        try:
            ctx.update_record(leaf.page, slot, payload)
            return True
        except PageFullError:
            # Replace as delete + (re-descending) insert: the deletion
            # frees the slot; the insert path handles any split.
            ctx.delete_record(leaf.page, slot)
            return False

    def _make_room(self, ctx, path, depth, need, err):
        """Copy-on-write if compaction would make the record fit —
        this covers both fragmented committed space and space held
        hostage by cells this transaction made dead (paper Section
        4.3) — otherwise split."""
        del err
        page = path[depth].page
        if page.fits_after_copy(need):
            self._copy_on_write(ctx, path, depth)
        else:
            self._split(ctx, path, depth)

    def _copy_on_write(self, ctx, path, depth):
        """Defragment ``path[depth]`` copy-on-write and swap the parent
        pointer (paper Section 4.3).

        A context may defragment *in place* (NVWAL's volatile cache can
        shift records freely), in which case the page number is
        unchanged and no pointer swap or free is needed.
        """
        old = path[depth]
        new_no, new_page = ctx.defragment(old.page_no)
        new_page.header_capacity = old.page.header_capacity
        if new_no != old.page_no:
            self._swap_child(ctx, path, depth, new_no)
            ctx.free_page(old.page_no)
        path[depth] = _PathEntry(new_no, new_page, old.parent_slot)

    def _swap_child(self, ctx, path, depth, new_page_no):
        """Repoint the parent at a copy-on-write page.

        Two regimes (paper Section 4.3):

        * **in-place** — when the fresh page carries *every* committed
          record of the old one, its durable header is
          committed-equivalent, so a single 8-byte-atomic pointer store
          is crash-safe at any instant;
        * **transactional** — when this transaction already removed
          committed records from the page's pending view (a split moved
          them to a not-yet-committed sibling), the pointer must flip
          atomically with the commit, so it goes through a normal
          out-of-place cell update.

        The root-pointer case always goes through the transaction (an
        8-byte-atomic root slot update).
        """
        entry = path[depth]
        if entry.parent_slot is None:
            ctx.set_root(self.root_slot, new_page_no)
            return
        parent = path[depth - 1]
        committed = set(entry.page.committed_offsets())
        if committed <= set(entry.page.slots()):
            ctx.overwrite_child_pointer(parent.page, entry.parent_slot, new_page_no)
            return
        slot = entry.parent_slot
        sep, _ = parse_internal(parent.page.record(slot))
        cell = internal_cell(sep, new_page_no)
        try:
            ctx.update_record(parent.page, slot, cell)
        except PageFullError:
            # No room for the out-of-place cell: replace it through the
            # full insert machinery (copy-on-write or split the parent).
            ctx.delete_record(parent.page, slot)
            self._insert_cell(ctx, path, path.index(parent), slot, cell)

    def _split(self, ctx, path, depth):
        """Split ``path[depth]``: allocate a left sibling that takes
        the smaller half (paper Figure 4) and link it into the parent.

        Returns ``(sibling_no, sibling_page, half)`` — ``half`` is how
        many leading slots moved out, so callers with a pending cell
        can route it to the correct side.
        """
        entry = path[depth]
        page = entry.page
        nrec = page.nrecords
        if nrec < 1:
            raise PageFullError("cannot split an empty page")
        half = max(1, nrec // 2)
        sibling_no, sibling = ctx.allocate_page(page.page_type)
        sibling.header_capacity = (
            self.leaf_capacity if page.page_type == PAGE_LEAF
            else self.internal_capacity
        )
        if page.page_type == PAGE_LEAF:
            for i in range(half):
                ctx.insert_record(sibling, i, page.record(i))
            separator = leaf_key(page.record(half - 1))
        else:
            # The moved boundary cell becomes the sibling's rightmost;
            # its key is the separator pushed into the parent.
            for i in range(half - 1):
                ctx.insert_record(sibling, i, page.record(i))
            separator, child = parse_internal(page.record(half - 1))
            ctx.insert_record(sibling, half - 1, internal_cell(None, child))
        for _ in range(half):
            ctx.delete_record(page, 0)
        self._insert_cell(
            ctx, path, depth - 1, entry.parent_slot, internal_cell(separator, sibling_no)
        )
        return sibling_no, sibling, half

    def _insert_cell(self, ctx, path, depth, slot, cell):
        """Insert an internal cell at level ``depth`` (depth == -1 means
        the root split: grow the tree by one level).

        ``path`` entries are tracked as objects (re-located with
        ``path.index``) because a root split inside the cascade
        prepends a new entry, shifting every index.
        """
        if depth < 0:
            old_root = path[0]
            root_no, root = ctx.allocate_page(PAGE_INTERNAL)
            root.header_capacity = self.internal_capacity
            ctx.insert_record(root, 0, cell)
            ctx.insert_record(root, 1, internal_cell(None, old_root.page_no))
            ctx.set_root(self.root_slot, root_no)
            path.insert(0, _PathEntry(root_no, root, None))
            old_root.parent_slot = 1
            return
        parent = path[depth]
        child = path[depth + 1] if depth + 1 < len(path) else None
        try:
            ctx.insert_record(parent.page, slot, cell)
        except PageFullError:
            if parent.page.fits_after_copy(len(cell)):
                index = path.index(parent)
                self._copy_on_write(ctx, path, index)
                parent = path[index]
                ctx.insert_record(parent.page, slot, cell)
            else:
                _, sibling, half = self._split(ctx, path, path.index(parent))
                # Cells [0, half) moved to the sibling; route the
                # pending cell to whichever side owns its slot now.
                if slot >= half:
                    try:
                        ctx.insert_record(parent.page, slot - half, cell)
                    except PageFullError:
                        # The kept half still has no in-place room (its
                        # dead cells are unreclaimable until commit):
                        # compact it copy-on-write and retry.
                        index = path.index(parent)
                        self._copy_on_write(ctx, path, index)
                        parent = path[index]
                        ctx.insert_record(parent.page, slot - half, cell)
                else:
                    ctx.insert_record(sibling, slot, cell)
        if child is not None and child.parent_slot is not None:
            if slot <= child.parent_slot:
                child.parent_slot += 1

    # ------------------------------------------------------------------
    # Scan / verify internals
    # ------------------------------------------------------------------

    def _scan_page(self, view, page_no, lo, hi):
        page = self._typed_page(view, page_no)
        if page.page_type == PAGE_LEAF:
            for payload in page.records():
                key = leaf_key(payload)
                if lo is not None and key < lo:
                    continue
                if hi is not None and key > hi:
                    return
                yield key, self._read_value(view, payload)
            return
        for payload in page.records():
            sep, child = parse_internal(payload)
            if lo is not None and sep is not None and sep < lo:
                continue
            yield from self._scan_page(view, child, lo, hi)
            if hi is not None and sep is not None and sep >= hi:
                return

    def _scan_page_desc(self, view, page_no, lo, hi):
        page = self._typed_page(view, page_no)
        if page.page_type == PAGE_LEAF:
            for slot in range(page.nrecords - 1, -1, -1):
                payload = page.record(slot)
                key = leaf_key(payload)
                if hi is not None and key > hi:
                    continue
                if lo is not None and key < lo:
                    return
                yield key, self._read_value(view, payload)
            return
        cells = [parse_internal(p) for p in page.records()]
        for index in range(len(cells) - 1, -1, -1):
            sep, child = cells[index]
            if lo is not None and sep is not None and sep < lo:
                return
            previous_sep = cells[index - 1][0] if index else None
            if (
                hi is not None
                and previous_sep is not None
                and previous_sep >= hi
            ):
                continue  # this whole subtree is above the bound
            yield from self._scan_page_desc(view, child, lo, hi)

    # ------------------------------------------------------------------
    # Maintenance (VACUUM)
    # ------------------------------------------------------------------

    def compact(self, ctx, *, min_waste=64):
        """Rewrite fragmented pages copy-on-write (the paper's Section
        4.3 mechanism, applied proactively).  Returns the number of
        pages rewritten.  Runs inside the caller's transaction."""
        root_no = ctx.root_page_no(self.root_slot)
        path = [_PathEntry(root_no, self._typed_page(ctx, root_no), None)]
        return self._compact_walk(ctx, path, min_waste)

    def _compact_walk(self, ctx, path, min_waste):
        rewritten = 0
        page = path[-1].page
        if page.page_type == PAGE_INTERNAL:
            for slot in range(page.nrecords):
                _, child_no = parse_internal(page.record(slot))
                child = self._typed_page(ctx, child_no)
                path.append(_PathEntry(child_no, child, slot))
                rewritten += self._compact_walk(ctx, path, min_waste)
                path.pop()
        waste = page.total_free() - page.contiguous_free()
        if waste >= min_waste:
            self._copy_on_write(ctx, path, len(path) - 1)
            rewritten += 1
        return rewritten

    def _verify_page(self, view, page_no, lo, hi, depth, leaf_depths):
        page = self._typed_page(view, page_no)
        if page.page_type == PAGE_LEAF:
            leaf_depths.add(depth)
            keys = [leaf_key(p) for p in page.records()]
            assert keys == sorted(keys), "leaf %d keys unsorted" % page_no
            assert len(set(keys)) == len(keys), "leaf %d duplicate keys" % page_no
            for key in keys:
                assert lo is None or key > lo, "key below bound in leaf %d" % page_no
                assert hi is None or key <= hi, "key above bound in leaf %d" % page_no
            for payload in page.records():
                if is_overflow_cell(payload):
                    _, prefix, (total, head) = parse_leaf_any(payload)
                    tail = overflow.read_chain(view, head)
                    assert len(prefix) + len(tail) == total, (
                        "overflow chain of leaf %d truncated" % page_no
                    )
            return len(keys)
        cells = [parse_internal(p) for p in page.records()]
        assert cells, "empty internal page %d" % page_no
        assert cells[-1][0] is None, "internal %d missing rightmost" % page_no
        seps = [sep for sep, _ in cells[:-1]]
        assert all(sep is not None for sep in seps), (
            "internal %d rightmost not last" % page_no
        )
        assert seps == sorted(seps), "internal %d separators unsorted" % page_no
        count = 0
        prev = lo
        for sep, child in cells:
            upper = sep if sep is not None else hi
            count += self._verify_page(view, child, prev, upper, depth + 1, leaf_depths)
            prev = upper if upper is not None else prev
        return count
