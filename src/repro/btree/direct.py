"""Direct (unlogged) transaction context.

``DirectContext`` applies every mutation to the page immediately:
record bytes are flushed, then the slot header is overwritten in place
with ordinary stores and flushed.  There is no write-ahead state and no
atomic commit of the header.

It serves two purposes:

* the context for B-tree unit tests, where crash safety is not under
  test and immediate application keeps assertions simple;
* the **naive in-place baseline** of the atomicity ablation: under the
  8-byte-atomic crash model a multi-word slot header *can tear*, which
  is exactly the failure the paper's in-place commit (RTM + line-atomic
  flush) and slot-header logging exist to prevent.

It also doubles as a read view (``root_page_no`` / ``page``).
"""

from repro.storage.defrag import defragment_into


class DirectContext:
    """Immediate-application context over a ``PageStore``."""

    def __init__(self, store):
        self.store = store
        self._pages = {}

    # ------------------------------------------------------------------
    # View protocol
    # ------------------------------------------------------------------

    def root_page_no(self, slot):
        return self.store.root(slot)

    def page(self, page_no):
        page = self._pages.get(page_no)
        if page is None:
            page = self.store.page(page_no)
            self._pages[page_no] = page
        return page

    # ------------------------------------------------------------------
    # Mutation protocol
    # ------------------------------------------------------------------

    def insert_record(self, page, slot, payload):
        offset = page.pending_insert(slot, payload)
        page.flush_record(offset, len(payload))
        self._apply(page)
        return offset

    def update_record(self, page, slot, payload):
        old_offset = page.slot_offset(slot)
        offset = page.pending_update(slot, payload)
        page.flush_record(offset, len(payload))
        self._apply(page)
        page.reclaim_cell(old_offset)
        return offset

    def delete_record(self, page, slot):
        old_offset = page.slot_offset(slot)
        page.pending_delete(slot)
        self._apply(page)
        page.reclaim_cell(old_offset)

    def allocate_page(self, page_type):
        page = self.store.allocate_page(page_type)
        page_no = self.store.page_no_of(page)
        self._pages[page_no] = page
        return page_no, page

    def free_page(self, page_no):
        self._pages.pop(page_no, None)
        self.store.free_page(page_no)

    def set_root(self, slot, page_no):
        self.store.set_root(slot, page_no)

    def overwrite_child_pointer(self, parent_page, slot, new_child_no):
        from repro.storage.slotted_page import CELL_HEADER_SIZE

        offset = parent_page.slot_offset(slot)
        position = parent_page.base + offset + CELL_HEADER_SIZE
        self.store.pm.write_u32(position, new_child_no)
        self.store.pm.persist(position, 4)

    def defragment(self, page_no):
        fresh = defragment_into(self.store, self.page(page_no))
        fresh_no = self.store.page_no_of(fresh)
        self._pages[fresh_no] = fresh
        fresh.apply_header(fresh.pending_header_image(), persist=True)
        return fresh_no, fresh

    # ------------------------------------------------------------------

    def _apply(self, page):
        """Overwrite the header in place — deliberately *not* atomic."""
        page.apply_header(page.pending_header_image(), persist=True)
