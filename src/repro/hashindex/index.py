"""Static hashing with overflow chains on slotted pages.

Layout:

* the **directory** is one slotted page holding ``nbuckets`` fixed
  4-byte records — bucket head page numbers (0 = bucket not yet
  allocated).  Updating an entry is an ordinary out-of-place record
  update, so directory changes commit atomically with the transaction
  under every scheme;
* a **bucket** is a chain of slotted pages.  Slot 0 of each bucket
  page is the chain cell (u32 next page number); records live in
  slots 1..n, unordered, encoded as ``u16 key_len | key | value``.

Inserting into a full bucket appends an overflow page — a multi-page
transaction that FAST⁺ automatically routes through slot-header
logging, exactly like a B-tree split.

The index uses the same view/context protocol as ``repro.btree``, so
``FASTContext``, ``NVWALContext`` etc. work unchanged::

    index = HashIndex(root_slot=2)
    with engine.transaction() as txn:
        index.create(txn.ctx)
        index.insert(txn.ctx, b"key", b"value")
"""

import zlib

from repro.btree.cells import leaf_cell, leaf_key, parse_leaf
from repro.storage.slotted_page import PAGE_LEAF, PAGE_META, PageFullError

_CHAIN_SLOT = 0
_FIRST_RECORD_SLOT = 1


class HashIndex:
    """A persistent hash index bound to a root-pointer slot."""

    def __init__(self, *, root_slot, nbuckets=64):
        if nbuckets < 1:
            raise ValueError("need at least one bucket")
        self.root_slot = root_slot
        self.nbuckets = nbuckets

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def create(self, ctx):
        """Allocate the directory page with all buckets unassigned."""
        page_no, directory = ctx.allocate_page(PAGE_META)
        for bucket in range(self.nbuckets):
            ctx.insert_record(directory, bucket, (0).to_bytes(4, "little"))
        ctx.set_root(self.root_slot, page_no)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def bucket_of(self, key):
        return zlib.crc32(key) % self.nbuckets

    def search(self, view, key):
        """Value stored under ``key``, or None."""
        head_no = self._bucket_head(self._directory(view), self.bucket_of(key))
        if head_no == 0:
            return None
        for page, slot in self._chain_pages(view, head_no, key):
            if slot is not None:
                return parse_leaf(page.record(slot))[1]
        return None

    def contains(self, view, key):
        return self.search(view, key) is not None

    def insert(self, ctx, key, value, *, replace=False):
        """Insert ``key -> value``; with ``replace`` overwrite."""
        payload = leaf_cell(key, value)
        directory = self._directory(ctx)
        bucket = self.bucket_of(key)
        head_no = self._bucket_head(directory, bucket)
        if head_no == 0:
            head_no, head = self._new_bucket_page(ctx)
            ctx.update_record(
                directory, bucket, head_no.to_bytes(4, "little")
            )
        last_page = None
        for page, slot in self._chain_pages(ctx, head_no, key):
            if slot is not None:
                if not replace:
                    raise KeyError("duplicate key %r" % key)
                ctx.update_record(page, slot, payload)
                return
            last_page = page
        # Not present: append to the first chain page with room.
        page = ctx.page(head_no)
        while True:
            try:
                ctx.insert_record(page, page.nrecords, payload)
                return
            except PageFullError:
                if page.fits_after_copy(len(payload)):
                    # Fragmented page: rewrite copy-on-write and
                    # repoint whoever references it.
                    page = self._copy_on_write(ctx, directory, bucket,
                                               head_no, page)
                    continue
                next_no = self._next_of(page)
                if next_no == 0:
                    overflow_no, overflow = self._new_bucket_page(ctx)
                    ctx.update_record(
                        page, _CHAIN_SLOT, overflow_no.to_bytes(4, "little")
                    )
                    page = overflow
                else:
                    page = ctx.page(next_no)
        del last_page

    def delete(self, ctx, key):
        """Remove ``key``; returns False if absent."""
        head_no = self._bucket_head(self._directory(ctx), self.bucket_of(key))
        if head_no == 0:
            return False
        for page, slot in self._chain_pages(ctx, head_no, key):
            if slot is not None:
                ctx.delete_record(page, slot)
                return True
        return False

    def items(self, view):
        """All (key, value) pairs (unordered, as hash files are)."""
        directory = self._directory(view)
        for bucket in range(self.nbuckets):
            page_no = self._bucket_head(directory, bucket)
            while page_no:
                page = view.page(page_no)
                for slot in range(_FIRST_RECORD_SLOT, page.nrecords):
                    yield parse_leaf(page.record(slot))
                page_no = self._next_of(page)

    def count(self, view):
        return sum(1 for _ in self.items(view))

    # ------------------------------------------------------------------
    # Integrity / GC support
    # ------------------------------------------------------------------

    def verify(self, view):
        """Every record hashes to the bucket that holds it; chains are
        acyclic.  Returns the record count."""
        directory = self._directory(view)
        assert directory.nrecords == self.nbuckets, "directory truncated"
        count = 0
        for bucket in range(self.nbuckets):
            seen = set()
            page_no = self._bucket_head(directory, bucket)
            while page_no:
                assert page_no not in seen, "cycle in bucket %d" % bucket
                seen.add(page_no)
                page = view.page(page_no)
                keys = set()
                for slot in range(_FIRST_RECORD_SLOT, page.nrecords):
                    key = leaf_key(page.record(slot))
                    assert self.bucket_of(key) == bucket, (
                        "key %r misplaced in bucket %d" % (key, bucket)
                    )
                    assert key not in keys, "duplicate %r in page" % key
                    keys.add(key)
                    count += 1
                page_no = self._next_of(page)
        return count

    def reachable_pages(self, view):
        """Directory + every bucket/overflow page (for GC)."""
        root = view.root_page_no(self.root_slot)
        if not root:
            return set()
        return self.reachable_from_directory(view, root)

    @staticmethod
    def reachable_from_directory(view, root_page_no):
        """Reachability walk from a directory page, without needing the
        index object (used by engine-level garbage collection, which
        recognises hash directories by their META page type)."""
        pages = {root_page_no}
        directory = view.page(root_page_no)
        for bucket in range(directory.nrecords):
            page_no = int.from_bytes(directory.record(bucket), "little")
            while page_no and page_no not in pages:
                pages.add(page_no)
                chain = view.page(page_no)
                page_no = int.from_bytes(chain.record(_CHAIN_SLOT), "little")
        return pages

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _directory(self, view):
        return view.page(view.root_page_no(self.root_slot))

    @staticmethod
    def _bucket_head(directory, bucket):
        return int.from_bytes(directory.record(bucket), "little")

    @staticmethod
    def _next_of(page):
        return int.from_bytes(page.record(_CHAIN_SLOT), "little")

    def _new_bucket_page(self, ctx):
        page_no, page = ctx.allocate_page(PAGE_LEAF)
        ctx.insert_record(page, _CHAIN_SLOT, (0).to_bytes(4, "little"))
        return page_no, page

    def _chain_pages(self, view, head_no, key):
        """Yield (page, slot-of-key-or-None) along the bucket chain."""
        page_no = head_no
        while page_no:
            page = view.page(page_no)
            found = None
            for slot in range(_FIRST_RECORD_SLOT, page.nrecords):
                if leaf_key(page.record(slot)) == key:
                    found = slot
                    break
            yield page, found
            page_no = self._next_of(page)

    def _copy_on_write(self, ctx, directory, bucket, head_no, page):
        """Defragment a chain page and repoint its referrer."""
        old_no = next(
            no for no in self._chain_page_nos(ctx, head_no)
            if ctx.page(no) is page or ctx.page(no).base == page.base
        )
        new_no, fresh = ctx.defragment(old_no)
        if new_no == old_no:
            return fresh
        pointer = new_no.to_bytes(4, "little")
        if old_no == head_no:
            ctx.update_record(directory, bucket, pointer)
        else:
            previous = self._predecessor(ctx, head_no, old_no)
            ctx.update_record(previous, _CHAIN_SLOT, pointer)
        ctx.free_page(old_no)
        return fresh

    def _chain_page_nos(self, view, head_no):
        page_no = head_no
        while page_no:
            yield page_no
            page_no = self._next_of(view.page(page_no))

    def _predecessor(self, view, head_no, target_no):
        for page_no in self._chain_page_nos(view, head_no):
            page = view.page(page_no)
            if self._next_of(page) == target_no:
                return page
        raise KeyError("page %d not in chain" % target_no)
