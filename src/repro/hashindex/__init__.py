"""Hash index over failure-atomic slotted pages.

The paper argues its persistent slotted-page optimisation "can be used
not only for B+-trees (or any of its variants) but also for other
hash-based indexes" (Section 2.2).  This package substantiates the
claim: a static-hashing file (the paper's Section 3.1 taxonomy) whose
directory and buckets are all slotted pages driven through the same
transaction-context protocol as the B-tree — so it inherits in-place
commit, slot-header logging, and NVWAL behaviour unchanged.
"""

from repro.hashindex.index import HashIndex

__all__ = ["HashIndex"]
