"""Slotted-page storage over persistent memory.

This package implements the paper's central data structure — the
slotted page (Section 3.1) — directly on top of ``repro.pm``:

* ``SlottedPage`` — fixed 8-byte metadata (type, flags, record count,
  content-area start, free-list head) followed by the record offset
  array growing toward the end of the page, with the record content
  area growing backward from the end;
* an in-page free list of reclaimed cells that is *reconstructible from
  the offset array* (Section 4.3), so its updates need not be
  failure-atomic;
* copy-on-write defragmentation for records that no contiguous free
  chunk can hold;
* ``PageStore`` — a fixed-size-page arena with a persistent free-page
  list and reachability-based garbage collection (orphan split pages
  after a crash are reclaimed, Section 4.4).
"""

from repro.storage.slotted_page import (
    FIXED_HEADER_SIZE,
    PAGE_INTERNAL,
    PAGE_LEAF,
    PageFullError,
    RecordTooLargeError,
    SlottedPage,
    max_header_records,
)
from repro.storage.pagestore import OutOfPagesError, PageStore
from repro.storage.defrag import defragment_into

__all__ = [
    "FIXED_HEADER_SIZE",
    "OutOfPagesError",
    "PAGE_INTERNAL",
    "PAGE_LEAF",
    "PageFullError",
    "PageStore",
    "RecordTooLargeError",
    "SlottedPage",
    "defragment_into",
    "max_header_records",
]
