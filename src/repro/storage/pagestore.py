"""Fixed-size-page arena over persistent memory.

``PageStore`` carves a region of PM into pages.  Page 0 is the store
header (magic, geometry, the free-page list head, and a small table of
named root pointers used by the B-tree and the catalog); all other
pages are handed out by :meth:`allocate_page`.

Crash-safety contract (paper Section 4.4): popping a page off the free
list is persisted with a single 8-byte-atomic head update, so a crash
can at worst *leak* a page that no committed structure references yet
("the sibling page can be safely garbage collected").
:meth:`garbage_collect` rebuilds the free list from a reachability set,
reclaiming such orphans.
"""

from repro.storage.slotted_page import SlottedPage

_MAGIC = 0x51A7_7ED0  # "slotted"
_OFF_MAGIC = 0
_OFF_PAGE_SIZE = 4
_OFF_NPAGES = 8
_OFF_FREE_HEAD = 12
_OFF_ROOTS = 16
N_ROOT_SLOTS = 12


class OutOfPagesError(Exception):
    """The arena has no free pages left."""


class PageStore:
    """Page allocator over ``[base, base + npages * page_size)``."""

    def __init__(self, pm, base, npages, page_size):
        if page_size % 64:
            raise ValueError("page_size must be cache-line aligned")
        if npages < 2:
            raise ValueError("need at least a header page and one data page")
        self.pm = pm
        self.base = base
        self.npages = npages
        self.page_size = page_size
        #: Page-reuse hook for dependent layers (the tiered DRAM page
        #: cache): called with the page number whenever a page returns
        #: to the free list — ``free_page`` or a ``garbage_collect``
        #: sweep — because a freed page can be reallocated with new
        #: content, and nothing derived from its old identity may
        #: survive that.  None = nobody listening.
        self.on_page_freed = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def format(cls, pm, base, npages, page_size):
        """Initialise a fresh store with all data pages free."""
        store = cls(pm, base, npages, page_size)
        pm.write_u32(base + _OFF_PAGE_SIZE, page_size)
        pm.write_u32(base + _OFF_NPAGES, npages)
        pm.write_u32(base + _OFF_FREE_HEAD, 1 if npages > 1 else 0)
        for slot in range(N_ROOT_SLOTS):
            pm.write_u32(base + _OFF_ROOTS + 4 * slot, 0)
        for page_no in range(1, npages):
            nxt = page_no + 1 if page_no + 1 < npages else 0
            pm.write_u32(store.page_base(page_no), nxt)
            pm.persist(store.page_base(page_no), 4)
        pm.write_u32(base + _OFF_MAGIC, _MAGIC)
        pm.persist(base, _OFF_ROOTS + 4 * N_ROOT_SLOTS)
        return store

    @classmethod
    def attach(cls, pm, base):
        """Open an existing store (after restart or crash)."""
        if pm.read_u32(base + _OFF_MAGIC) != _MAGIC:
            raise ValueError("no page store at %#x" % base)
        page_size = pm.read_u32(base + _OFF_PAGE_SIZE)
        npages = pm.read_u32(base + _OFF_NPAGES)
        return cls(pm, base, npages, page_size)

    @staticmethod
    def bytes_needed(npages, page_size):
        """Arena bytes a store of this geometry occupies."""
        return npages * page_size

    # ------------------------------------------------------------------
    # Page addressing
    # ------------------------------------------------------------------

    def page_base(self, page_no):
        """Byte address of page ``page_no``."""
        if not 1 <= page_no < self.npages:
            raise IndexError("page %d out of range" % page_no)
        return self.base + page_no * self.page_size

    def page(self, page_no, header_capacity=None):
        """A ``SlottedPage`` view of an existing page."""
        return SlottedPage(
            self.pm, self.page_base(page_no), self.page_size, header_capacity
        )

    def page_no_of(self, page):
        """Page number of a ``SlottedPage`` belonging to this store."""
        return (page.base - self.base) // self.page_size

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    @property
    def free_head(self):
        return self.pm.read_u32(self.base + _OFF_FREE_HEAD)

    def reserve_page_no(self):
        """Pop a free page number without formatting the page.

        Used by engines that materialise the page elsewhere first
        (NVWAL builds it in the volatile buffer cache).  The pop is one
        8-byte-atomic head update; a crash can at worst leak the page.
        """
        head = self.free_head
        if not head:
            raise OutOfPagesError("no free pages")
        nxt = self.pm.read_u32(self.page_base(head))
        self.pm.write_u32(self.base + _OFF_FREE_HEAD, nxt)
        self.pm.persist(self.base + _OFF_FREE_HEAD, 4)
        return head

    def allocate_page(self, page_type, *, header_capacity=None):
        """Pop a free page and format it as ``page_type``.

        Returns an initialised ``SlottedPage``.  The page is durable
        but unreachable until the caller links it into a committed
        structure; if a crash intervenes, garbage collection reclaims
        it.
        """
        head = self.reserve_page_no()
        return SlottedPage.initialize(
            self.pm,
            self.page_base(head),
            self.page_size,
            page_type,
            header_capacity=header_capacity,
        )

    def free_page(self, page_no):
        """Return ``page_no`` to the free list."""
        base = self.page_base(page_no)
        self.pm.write_u32(base, self.free_head)
        self.pm.persist(base, 4)
        self.pm.write_u32(self.base + _OFF_FREE_HEAD, page_no)
        self.pm.persist(self.base + _OFF_FREE_HEAD, 4)
        if self.on_page_freed is not None:
            self.on_page_freed(page_no)

    def free_page_count(self):
        """Number of pages currently on the free list."""
        count = 0
        page_no = self.free_head
        while page_no:
            count += 1
            page_no = self.pm.read_u32(self.page_base(page_no))
        return count

    def garbage_collect(self, reachable, *, protected=frozenset()):
        """Rebuild the free list as every page not in ``reachable``.

        ``reachable`` is the set of page numbers referenced by
        committed structures (e.g. a B-tree walk from the root).  Pages
        leaked by a crash between allocation and linking are thereby
        reclaimed (paper Section 4.4).  ``protected`` pages survive
        even when unreachable — they belong to other live sessions'
        uncommitted transactions.
        """
        freed = 0
        head = 0
        for page_no in range(self.npages - 1, 0, -1):
            if page_no in reachable or page_no in protected:
                continue
            base = self.page_base(page_no)
            self.pm.write_u32(base, head)
            self.pm.persist(base, 4)
            head = page_no
            freed += 1
            if self.on_page_freed is not None:
                self.on_page_freed(page_no)
        self.pm.write_u32(self.base + _OFF_FREE_HEAD, head)
        self.pm.persist(self.base + _OFF_FREE_HEAD, 4)
        return freed

    # ------------------------------------------------------------------
    # Named roots
    # ------------------------------------------------------------------

    def root(self, slot):
        """Read named root pointer ``slot`` (0 = unset)."""
        if not 0 <= slot < N_ROOT_SLOTS:
            raise IndexError("root slot %d out of range" % slot)
        return self.pm.read_u32(self.base + _OFF_ROOTS + 4 * slot)

    def set_root(self, slot, page_no, *, persist=True):
        """Atomically repoint named root ``slot`` to ``page_no``.

        A root pointer is 4 bytes inside one 8-byte word, so the update
        is failure-atomic by the hardware's 8-byte guarantee.
        """
        if not 0 <= slot < N_ROOT_SLOTS:
            raise IndexError("root slot %d out of range" % slot)
        self.pm.write_u32(self.base + _OFF_ROOTS + 4 * slot, page_no)
        if persist:
            self.pm.persist(self.base + _OFF_ROOTS + 4 * slot, 4)
