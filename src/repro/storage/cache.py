"""Tiered DRAM page cache in front of the PM arena (read path only).

The paper's pitch is PM-as-the-buffer-cache, but hybrid DRAM/PM tiers
win whenever the read-hot set fits in DRAM (van Renen et al., Lersch
et al.): every committed read otherwise pays the full PM ``read_ns``
even for pages touched on every transaction (the root, the upper
B-tree levels).  ``TieredPageCache`` keeps clock/second-chance-managed
DRAM copies of read-hot pages; reads served from a cached frame charge
``LatencyProfile.dram_ns`` per missing line (via
``CostModel.dram_tier_line_ns``, the same attribution point NVWAL's
volatile buffer cache uses) instead of ``read_ns``.

Coherence contract (DESIGN.md §17): the cache is strictly read-only
and write-through-by-invalidation.  Every write path keeps the full
store→flush→fence→≤8B-mark discipline against PM, untouched; whenever
a committed install rewrites a page's durable header — the FAST
checkpoint, the FAST⁺ RTM in-place publish, a copy-on-write parent
pointer swap, a group-commit epoch close, a 2PC participant install,
recovery replay, or a page returning to the free list — the installer
calls :meth:`TieredPageCache.invalidate` for that page.  A cached
frame therefore always holds the *latest committed* image of its page
(pre-commit record writes land in free space invisible to the durable
header, exactly as they are invisible to a direct PM read).  The TC111
trace rule (``repro.analysis.tracecheck``) checks this end to end from
the CACHE_FILL / CACHE_HIT / CACHE_INVAL events.

Frames are never handed out for writing: a frame's page view is backed
by ``_FrameMemory``, which raises on any store or flush.  Eviction
drops the cache's reference only — outstanding page views keep their
(consistent, committed-as-of-fetch) buffer, the same lifetime contract
MVCC version images have.
"""

from repro.obs import trace as ev
from repro.storage.slotted_page import SlottedPage


class _FrameMemory:
    """Read-only memory over one cached page copy, charged at DRAM cost.

    Mirrors ``VolatileMemory``'s accounting: the first missing 64-byte
    line of a read pays ``dram_ns``, subsequent missing lines of the
    same sequential read stream at ``dram_stream_line_ns``, resident
    lines pay the CPU cache-hit cost.  Per-frame residency persists
    across reads — a truly read-hot frame converges to cache-hit cost,
    exactly like a hot line in the PM arena's residency model.
    """

    __slots__ = ("clock", "_image", "_hit_ns", "_miss_ns", "_stream_ns",
                 "_resident")

    def __init__(self, image, clock, hit_ns, miss_ns, stream_ns):
        self._image = image
        self.clock = clock
        self._hit_ns = hit_ns
        self._miss_ns = miss_ns
        self._stream_ns = stream_ns
        self._resident = set()

    def read(self, addr, length):
        end = addr + length
        if addr < 0 or end > len(self._image):
            raise IndexError(
                "access [%d, %d) outside cached frame of %d bytes"
                % (addr, end, len(self._image))
            )
        if length <= 0:
            return b""
        clock = self.clock
        resident = self._resident
        missed_before = False
        for line in range(addr >> 6, ((end - 1) >> 6) + 1):
            if line in resident:
                ns = self._hit_ns
            else:
                resident.add(line)
                if missed_before:
                    ns = self._stream_ns
                else:
                    ns = self._miss_ns
                    missed_before = True
            if ns > 0:
                clock.now_ns += ns
                clock.pending_ns += ns
        return self._image[addr:end]

    def read_u16(self, addr):
        return int.from_bytes(self.read(addr, 2), "little")

    def read_u32(self, addr):
        return int.from_bytes(self.read(addr, 4), "little")

    def read_u64(self, addr):
        return int.from_bytes(self.read(addr, 8), "little")

    def _no_write(self, *args, **kwargs):
        raise TypeError("cached page frames are read-only")

    write = write_u16 = write_u32 = write_u64 = _no_write
    clflush = clwb = flush_range = persist = _no_write

    def sfence(self):
        raise TypeError("cached page frames are read-only")


class _Frame:
    """One cached page: the committed image plus clock-policy state."""

    __slots__ = ("page_no", "page", "ref", "index")

    def __init__(self, page_no, page, index):
        self.page_no = page_no
        self.page = page
        self.ref = False
        self.index = index


class TieredPageCache:
    """Clock/second-chance DRAM cache of committed page images.

    ``capacity`` is ``SystemConfig.dram_cache_pages``; the engine only
    constructs a cache when it is positive, so the default (0) stays
    byte-identical to a cache-less build — no counters, no events, no
    simulated-time deltas.
    """

    def __init__(self, store, capacity):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        pm = store.pm
        self.store = store
        self.pm = pm
        self.capacity = capacity
        self.obs = pm.obs
        self._page_size = store.page_size
        self._hit_line_ns = pm.cost.cache_hit_ns
        self._miss_line_ns = pm.cost.dram_tier_line_ns(pm.latency)
        self._stream_line_ns = pm.cost.dram_tier_line_ns(
            pm.latency, streamed=True
        )
        self._frames = {}     # page_no -> _Frame
        self._ring = []       # clock order (swap-removed on invalidate)
        self._hand = 0
        registry = self.obs.registry
        self._c_hit = registry.counter("cache.hit")
        self._c_miss = registry.counter("cache.miss")
        self._c_fill = registry.counter("cache.fill")
        self._c_evict = registry.counter("cache.evict")
        self._c_invalidate = registry.counter("cache.invalidate")

    def __len__(self):
        return len(self._frames)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def lookup(self, page_no):
        """The cached page view, or None (counted as a miss)."""
        frame = self._frames.get(page_no)
        if frame is None:
            self._c_miss.value += 1
            return None
        frame.ref = True
        self._c_hit.value += 1
        self.obs.event(ev.CACHE_HIT, page_no)
        return frame.page

    def fill(self, page_no):
        """Copy ``page_no``'s committed image into a DRAM frame.

        The copy itself reads through the PM arena, so the fill pays
        the full PM read cost once; subsequent hits are DRAM-priced.
        Returns the frame's page view.
        """
        store = self.store
        image = self.pm.read(store.page_base(page_no), self._page_size)
        if len(self._ring) >= self.capacity:
            self._evict_one()
        memory = _FrameMemory(
            image, self.pm.clock, self._hit_line_ns,
            self._miss_line_ns, self._stream_line_ns,
        )
        page = SlottedPage(memory, 0, self._page_size)
        page.page_no = page_no
        frame = _Frame(page_no, page, len(self._ring))
        self._ring.append(frame)
        self._frames[page_no] = frame
        self._c_fill.value += 1
        self.obs.event(ev.CACHE_FILL, page_no)
        return page

    def _evict_one(self):
        """Clock sweep: skip (and clear) referenced frames once, evict
        the first unreferenced one."""
        ring = self._ring
        hand = self._hand
        while True:
            if hand >= len(ring):
                hand = 0
            frame = ring[hand]
            if frame.ref:
                frame.ref = False
                hand += 1
                continue
            self._hand = hand
            self._drop(frame)
            self._c_evict.value += 1
            self.obs.event(ev.CACHE_INVAL, frame.page_no, ev.INVAL_EVICT)
            return

    # ------------------------------------------------------------------
    # Coherence
    # ------------------------------------------------------------------

    def invalidate(self, page_no, reason=ev.INVAL_INSTALL):
        """Drop ``page_no``'s frame (no-op when not cached).

        Called at every committed install point and on page free/GC —
        the coherence contract this module's docstring spells out.
        """
        frame = self._frames.get(page_no)
        if frame is None:
            return
        self._drop(frame)
        self._c_invalidate.value += 1
        self.obs.event(ev.CACHE_INVAL, page_no, reason)

    def _drop(self, frame):
        """Unlink a frame from the directory and the clock ring
        (swap-remove keeps the sweep O(1) per drop)."""
        del self._frames[frame.page_no]
        ring = self._ring
        last = ring.pop()
        if last is not frame:
            ring[frame.index] = last
            last.index = frame.index
        if self._hand > len(ring):
            self._hand = 0
