"""MVCC version chains: lock-free snapshot reads over pre-images.

The FAST/FAST⁺ commit protocol (and the NVWAL baseline's differential
logging) never update committed page content in place: records land in
free space, headers publish atomically, structural changes go through
copy-on-write plus an 8-byte pointer swap.  Every committed page
version therefore has a stable pre-image the instant a transaction
commits over it — the substrate this module turns into multi-version
concurrency control for readers.

The pieces:

``VersionManager``
    Owns the commit-timestamp domain (monotonic, drawn from the shared
    ``SimClock``), the per-page and per-root-slot version chains, the
    active snapshot registry, and the watermark garbage collector.
    Timestamping is *lazy*: commits are stamped, and pre-images
    retained, only while at least one snapshot is active — the default
    (no read-only session) path does zero extra work and stays
    byte-identical.

``SnapshotContext``
    The read-only transaction context: it implements the B-tree view
    protocol (``segment`` / ``root_page_no`` / ``page``) by resolving
    every read against the latest version with commit timestamp ≤ its
    pinned snapshot timestamp.  It acquires **no** locks — no IS/S
    traffic at all — and never writes.

``_ImageMemory``
    A read-only memory adapter serving a retained pre-image with the
    same cache/latency accounting as reading the underlying PM page.

Version chains are *volatile* metadata over *persistent* pre-images:
a crash discards them (recovery starts with empty chains), and readers
never flush anything — there is nothing of theirs to make durable.
"""

from repro.obs import trace as ev
from repro.storage.pagestore import N_ROOT_SLOTS
from repro.storage.slotted_page import SlottedPage


def _visible_bytes(pm, base, length):
    """The CPU-visible content of ``[base, base+length)`` — durable
    bytes overlaid with dirty/in-flight cache lines — read host-side
    (no simulated cost: version capture is bookkeeping, not I/O)."""
    end = base + length
    out = bytearray(pm._durable[base:end])
    vget = pm._vis.get
    for line in range(base >> 6, ((end - 1) >> 6) + 1):
        entry = vget(line)
        if entry is not None:
            line_base = line << 6
            lo = line_base if line_base > base else base
            hi = line_base + 64 if line_base + 64 < end else end
            out[lo - base:hi - base] = entry.data[lo - line_base:hi - line_base]
    return bytes(out)


class _ImageMemory:
    """Read-only memory over one retained pre-image.

    Reads charge the shared clock like PM loads: the first touch of
    each 64-byte line pays the PM read latency, later touches the
    cache-hit cost.  Stores are impossible by construction — snapshot
    transactions have no mutation path — and raise if attempted.
    """

    __slots__ = ("clock", "_image", "_hit_ns", "_miss_ns", "_resident")

    def __init__(self, image, clock, hit_ns, miss_ns):
        self._image = image
        self.clock = clock
        self._hit_ns = hit_ns
        self._miss_ns = miss_ns
        self._resident = set()

    def read(self, addr, length):
        end = addr + length
        if addr < 0 or end > len(self._image):
            raise IndexError(
                "access [%d, %d) outside version image of %d bytes"
                % (addr, end, len(self._image))
            )
        if length <= 0:
            return b""
        clock = self.clock
        resident = self._resident
        for line in range(addr >> 6, ((end - 1) >> 6) + 1):
            if line in resident:
                ns = self._hit_ns
            else:
                resident.add(line)
                ns = self._miss_ns
            if ns > 0:
                clock.now_ns += ns
                clock.pending_ns += ns
        return self._image[addr:end]

    def read_u16(self, addr):
        return int.from_bytes(self.read(addr, 2), "little")

    def read_u32(self, addr):
        return int.from_bytes(self.read(addr, 4), "little")

    def read_u64(self, addr):
        return int.from_bytes(self.read(addr, 8), "little")

    def _no_write(self, *args, **kwargs):
        raise TypeError("version images are immutable")

    write = write_u16 = write_u32 = write_u64 = _no_write
    clflush = clwb = flush_range = persist = _no_write

    def sfence(self):
        raise TypeError("version images are immutable")


class SnapshotContext:
    """A read-only transaction's view: every read resolves against the
    latest version with commit timestamp ≤ ``snapshot_ts``.

    Implements exactly the view protocol the B-tree and hash-index
    read paths consume.  There is deliberately no ``uncommitted_pages``
    and no mutation protocol: a snapshot owns no pages and acquires no
    locks.
    """

    is_read_only = True

    def __init__(self, versions, session, snapshot_ts, *, track_reads=False):
        self.versions = versions
        self.session = session
        self.snapshot_ts = snapshot_ts
        self.obs = versions.obs
        self.segment = versions.clock.segment  # hot-path alias
        self.closed = False
        # OCC read-set tracking (off for plain read-only snapshots):
        # the first touch of each page / root slot is recorded and
        # announced (``OCC_READ``) so commit-time validation — and the
        # TC109 trace rule auditing it — can replay the exact set.
        self.track_reads = track_reads
        self.read_pages = set()
        self.read_roots = set()
        # Version-image pages are immutable forever, so resolved views
        # are cached per page; live pages are re-resolved every call
        # (a later commit may supersede them mid-snapshot).
        self._image_pages = {}
        # Live-page views, keyed by the page's commit stamp at caching
        # time (only when the engine allows it — see ``live_cacheable``):
        # a superseding commit stamps the page AND retains a pre-image,
        # so the chain shadows a stale entry before it can be served.
        self._live_pages = {}

    def root_page_no(self, slot):
        if self.track_reads and slot not in self.read_roots:
            self.read_roots.add(slot)
            self.versions._note_read(self.session.sid, "root", slot)
        return self.versions.resolve_root(slot, self.snapshot_ts)

    def page(self, page_no):
        versions = self.versions
        if self.track_reads and page_no not in self.read_pages:
            self.read_pages.add(page_no)
            versions._note_read(self.session.sid, "page", page_no)
        versions.obs.inc("mvcc.snapshot_reads")
        cached = self._image_pages.get(page_no)
        if cached is not None:
            versions.obs.event(ev.SNAPSHOT_READ, self.session.sid, cached[0])
            return cached[1]
        resolved = versions.resolve_page(page_no, self.snapshot_ts)
        if resolved is None:
            # The live page is the visible version (its last stamped
            # commit is ≤ the snapshot timestamp by construction: any
            # newer commit would have retained a pre-image for us).
            version_ts = versions.page_ts(page_no)
            live = self._live_pages.get(page_no)
            if live is not None and live[0] == version_ts:
                page = live[1]
            else:
                page = versions.live_page(page_no)
                if versions.live_cacheable:
                    self._live_pages[page_no] = (version_ts, page)
        else:
            version_ts, page = resolved
            self._image_pages[page_no] = (version_ts, page)
        versions.obs.event(ev.SNAPSHOT_READ, self.session.sid, version_ts)
        return page

    def reachable_pages(self):
        """Page numbers this snapshot's trees reference (the GC
        protection set while the snapshot is active)."""
        from repro.hashindex.index import HashIndex
        from repro.storage.slotted_page import PAGE_META

        engine = self.versions.engine
        pages = set()
        for slot in range(N_ROOT_SLOTS):
            root_no = self.root_page_no(slot)
            if not root_no:
                continue
            if self.page(root_no).page_type == PAGE_META:
                pages |= HashIndex.reachable_from_directory(self, root_no)
            else:
                pages |= engine.tree(slot).reachable_pages(self)
        return pages


class VersionManager:
    """Commit timestamps, version chains, snapshots, and the watermark
    garbage collector for one engine."""

    def __init__(self, engine):
        self.engine = engine
        self.obs = engine.obs
        self.clock = engine.clock
        #: Highest commit timestamp handed out (0 = none yet).
        self.last_commit_ts = 0
        # page_no/slot -> commit ts of the currently-live value (only
        # stamped while snapshots are active; see class docstring).
        self._page_ts = {}
        self._root_ts = {}
        # page_no -> [(birth_ts, superseded_ts, SlottedPage image view)]
        # ascending by superseded_ts; likewise slot -> old root page_no.
        self._page_chains = {}
        self._root_chains = {}
        self._snapshots = {}  # sid -> active SnapshotContext
        #: Resource-id namespace OR'd into packed OCC/VERSION_PUBLISH
        #: event resources (the shard router sets
        #: ``index << SHARD_NS_SHIFT`` so per-shard traces disambiguate).
        self.event_namespace = 0

    # -- snapshots ---------------------------------------------------------

    @property
    def capture_active(self):
        """True while at least one snapshot is pinned — the only state
        in which commits are stamped and pre-images retained."""
        return bool(self._snapshots)

    def begin_snapshot(self, session, *, track_reads=False):
        """Pin a snapshot at the current commit frontier and return the
        read-only transaction context."""
        ts = self.last_commit_ts
        ctx = SnapshotContext(self, session, ts, track_reads=track_reads)
        self._snapshots[session.sid] = ctx
        self.obs.event(ev.SNAPSHOT_BEGIN, session.sid, ts)
        return ctx

    def end_snapshot(self, ctx):
        """Unpin ``ctx`` and advance the GC watermark."""
        if ctx.closed:
            return
        ctx.closed = True
        self._snapshots.pop(ctx.session.sid, None)
        self.obs.event(ev.SNAPSHOT_END, ctx.session.sid)
        self.collect()

    def active_snapshots(self):
        return list(self._snapshots.values())

    # -- OCC read-set support ----------------------------------------------

    def _occ_active(self):
        """True while any pinned snapshot tracks its read set — the
        only state in which commits announce ``VERSION_PUBLISH``
        events (pure-MVCC runs stay byte-identical)."""
        for ctx in self._snapshots.values():
            if ctx.track_reads:
                return True
        return False

    def _packed(self, kind, ident):
        """One read-set/publish resource as the lock layer packs it, so
        the trace checker can correlate OCC events with lock events."""
        from repro.core.locking import LOCK_X, encode_lock

        return encode_lock((kind, self.event_namespace | ident), LOCK_X)

    def _note_read(self, sid, kind, ident):
        self.obs.event(ev.OCC_READ, sid, self._packed(kind, ident))

    def validate_read_set(self, ctx, pin_ts):
        """Packed resources in ``ctx``'s read set with a committed
        version in ``(pin_ts, now]`` — empty means validation passes.
        Sound because ``ctx`` itself keeps ``capture_active`` true for
        its whole lifetime, so every concurrent commit stamped the
        pages and roots it published."""
        stale = []
        for page_no in sorted(ctx.read_pages):
            if self._page_ts.get(page_no, 0) > pin_ts:
                stale.append(self._packed("page", page_no))
        for slot in sorted(ctx.read_roots):
            if self._root_ts.get(slot, 0) > pin_ts:
                stale.append(self._packed("root", slot))
        return stale

    def _announce_publish(self, ctx, touched, ts):
        """Emit one ``VERSION_PUBLISH`` per stamped resource (gated on
        OCC tracking being live; see ``_occ_active``)."""
        if not self._occ_active():
            return
        for page_no in sorted(touched):
            self.obs.event(ev.VERSION_PUBLISH, self._packed("page", page_no),
                           ts)
        for slot in sorted(ctx.root_updates):
            self.obs.event(ev.VERSION_PUBLISH, self._packed("root", slot), ts)

    # -- commit-time version publication -----------------------------------

    def _next_ts(self):
        """A fresh monotonic commit timestamp in the SimClock domain."""
        ts = int(self.clock.now_ns)
        if ts <= self.last_commit_ts:
            ts = self.last_commit_ts + 1
        self.last_commit_ts = ts
        return ts

    def publish_pm_commit(self, ctx):
        """FAST/FAST⁺ version publication, called at the very top of
        ``_commit`` (before any header, log, or checkpoint work): at
        that instant every dirty/freed page's durable content is still
        the pre-transaction committed state — record bytes sit in free
        space unreachable from the committed header, and headers apply
        only later at checkpoint.  Pages the transaction itself created
        are skipped: no snapshot can reach them (the pointers leading
        to them live in pre-images captured here).
        """
        if not self._snapshots:
            return
        ts = self._next_ts()
        engine = self.engine
        store = engine.store
        page_size = engine.config.page_size
        group = engine.group
        touched = set(ctx.dirty)
        touched.update(ctx.freed)
        new = ctx.new_pages
        for page_no in sorted(touched):
            if page_no in new:
                continue
            image = _visible_bytes(
                engine.pm, store.page_base(page_no), page_size
            )
            if group is not None:
                # An open-epoch member already committed over this
                # page: its header lives only in the group's overlay
                # (checkpoint is deferred to the close), so the PM
                # bytes still show the pre-epoch header.  Splice the
                # overlay in — the committed state this commit
                # supersedes is the *member's*, not the pre-epoch one.
                overlay = group.pending_headers.get(page_no)
                if overlay is not None:
                    image = bytes(overlay) + image[len(overlay):]
            # FAST pre-images are physically the same PM bytes the live
            # page occupies (records sit in free space, old headers
            # persist until checkpoint — nothing is overwritten in
            # place), so version reads share the live page's cache
            # lines.  A private cold-miss set would double-charge that
            # traffic; the committing writer just touched every one of
            # these lines, so they are accounted as cache-resident.
            self._retain_page(page_no, ts, image,
                              engine.pm._hit_ns, engine.pm._hit_ns)
        for page_no in sorted(touched):
            self._page_ts[page_no] = ts
        for page_no in sorted(new):
            self._page_ts[page_no] = ts
        for slot in sorted(ctx.root_updates):
            # engine._root consults the group overlay first, so the
            # retained root is the latest *committed* one even while
            # an epoch member's root swap awaits its checkpoint.
            self._retain_root(slot, ts, engine._root(slot))
            self._root_ts[slot] = ts
        self._announce_publish(ctx, touched.union(new), ts)
        self._update_gauge()

    def publish_wal_commit(self, ctx):
        """NVWAL version publication, called at the top of ``_commit``
        before the WAL append: the context's first-touch snapshots ARE
        the committed pre-images (the DRAM frames were committed state
        when the transaction first touched them)."""
        if not self._snapshots:
            return
        ts = self._next_ts()
        engine = self.engine
        dram = engine.dram
        touched = set(ctx.dirty)
        touched.update(ctx.freed)
        new = ctx.new_pages
        for page_no in sorted(touched):
            if page_no in new:
                continue
            image = ctx.snapshots.get(page_no)
            if image is None:
                image = self._committed_wal_image(page_no)
            # NVWAL pre-images are copies of cache-resident DRAM frames
            # (made at the writer's first touch); version reads charge
            # the cache-hit cost, like reads of the live frame itself.
            self._retain_page(page_no, ts, bytes(image),
                              dram._hit_ns, dram._hit_ns)
        for page_no in sorted(touched):
            self._page_ts[page_no] = ts
        for page_no in sorted(new):
            self._page_ts[page_no] = ts
        for slot in sorted(ctx.root_updates):
            self._retain_root(slot, ts, engine._root(slot))
            self._root_ts[slot] = ts
        self._announce_publish(ctx, touched.union(new), ts)
        self._update_gauge()

    def _committed_wal_image(self, page_no):
        """Committed content of an NVWAL page the committing context
        never snapshotted (e.g. freed without modification): the
        resident DRAM frame if any — clean committed content, because
        a page freed-but-unmodified was never written by this or (X
        locks) any other open transaction — else database page plus
        WAL deltas."""
        engine = self.engine
        page_size = engine.config.page_size
        frame = engine.cache._frame_of.get(page_no)
        if frame is not None:
            base = frame * page_size
            return bytes(engine.dram._data[base:base + page_size])
        image = bytearray(
            _visible_bytes(engine.pm, engine.store.page_base(page_no),
                           page_size)
        )
        for offset, data in engine.wal.deltas_for(page_no):
            image[offset:offset + len(data)] = data
        return bytes(image)

    def _retain_page(self, page_no, superseded_ts, image,
                     hit_ns=None, miss_ns=None):
        """Retain one pre-image; reads of the version view charge
        ``hit_ns``/``miss_ns`` per line (defaults: the engine PM's
        latencies — right for FAST, whose pre-images live in PM free
        space; NVWAL passes its DRAM latencies, because its pre-images
        are buffered version copies in DRAM)."""
        birth_ts = self._page_ts.get(page_no, 0)
        engine = self.engine
        pm = engine.pm
        if hit_ns is None:
            hit_ns, miss_ns = pm._hit_ns, pm._read_miss_ns
        page = SlottedPage(
            _ImageMemory(image, self.clock, hit_ns, miss_ns),
            0, engine.config.page_size,
        )
        page.page_no = page_no
        self._page_chains.setdefault(page_no, []).append(
            (birth_ts, superseded_ts, page)
        )

    def _retain_root(self, slot, superseded_ts, old_root_no):
        birth_ts = self._root_ts.get(slot, 0)
        self._root_chains.setdefault(slot, []).append(
            (birth_ts, superseded_ts, old_root_no)
        )

    # -- read resolution ---------------------------------------------------

    def page_ts(self, page_no):
        """Commit timestamp of the live version (0 = never stamped)."""
        return self._page_ts.get(page_no, 0)

    def resolve_page(self, page_no, ts):
        """The retained ``(version_ts, page view)`` visible at snapshot
        ``ts``, or None when the live page is the visible version."""
        chain = self._page_chains.get(page_no)
        if chain:
            for birth_ts, superseded_ts, page in chain:
                if birth_ts <= ts < superseded_ts:
                    return birth_ts, page
        return None

    def resolve_root(self, slot, ts):
        """Root page number of ``slot`` as of snapshot ``ts``."""
        chain = self._root_chains.get(slot)
        if chain:
            for birth_ts, superseded_ts, root_no in chain:
                if birth_ts <= ts < superseded_ts:
                    return root_no
        engine = self.engine
        if hasattr(engine, "_root"):
            return engine._root(slot)
        return engine.store.root(slot)

    def live_page(self, page_no):
        return self.engine._snapshot_live_page(page_no)

    @property
    def live_cacheable(self):
        """True when a snapshot may reuse a live-page view across reads
        (FAST: durable page content only changes at a commit, which
        stamps the page and shadows the cache with a chain entry).
        NVWAL says no — an open writer applies uncommitted headers to
        the shared DRAM frame without any commit stamp."""
        return self.engine._snapshot_live_cacheable

    def live_versions(self, page_no):
        """Live version count for a page: the current page plus every
        retained pre-image (1 = no history retained)."""
        return 1 + len(self._page_chains.get(page_no, ()))

    def pinned_pages(self):
        """Pages reachable through any active snapshot's view — the
        extra protection set for ``garbage_collect(protected=)``."""
        pinned = set()
        for ctx in self._snapshots.values():
            pinned |= ctx.reachable_pages()
        return pinned

    # -- garbage collection ------------------------------------------------

    def watermark(self):
        """Versions with ``superseded_ts`` ≤ the watermark are invisible
        to every present and future snapshot (future snapshots pin at
        ``last_commit_ts`` ≥ every superseded timestamp)."""
        ts = self.last_commit_ts
        for ctx in self._snapshots.values():
            if ctx.snapshot_ts < ts:
                ts = ctx.snapshot_ts
        return ts

    def collect(self):
        """Reclaim every version no snapshot can see; returns the count."""
        watermark = self.watermark()
        reclaimed = 0
        for chains in (self._page_chains, self._root_chains):
            for key in sorted(chains):
                chain = chains[key]
                kept = [
                    entry for entry in chain if entry[1] > watermark
                ]
                reclaimed += len(chain) - len(kept)
                if kept:
                    chains[key] = kept
                else:
                    del chains[key]
        if reclaimed:
            self.obs.inc("mvcc.gc_reclaimed", reclaimed)
            self.obs.event(ev.MVCC_GC, reclaimed, watermark)
        self._update_gauge()
        return reclaimed

    def versions_live(self):
        """Total retained chain entries (pages + roots)."""
        live = 0
        for chain in self._page_chains.values():
            live += len(chain)
        for chain in self._root_chains.values():
            live += len(chain)
        return live

    def _update_gauge(self):
        self.obs.registry.set_gauge("mvcc.versions_live", self.versions_live())
