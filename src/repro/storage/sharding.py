"""Sharded pagestores behind a thin router, with cross-shard 2PC.

One arena + one lock manager serializes every writer; this module
carves the keyspace over N independent shards instead.  Each shard is
a complete engine — its own pagestore, slot-header log, lock manager,
and MVCC version chains — living in its own slice of ONE simulated PM
arena (``SystemConfig.base_offset`` places each slice), all driven by
the one shared ``SimClock``/obs handle so multi-shard runs stay
byte-identical across reruns.

Keys route by ``crc32(key) % nshards``.  A transaction that touches a
single shard commits exactly as before — including FAST⁺'s RTM
in-place commit — and transactions on disjoint shards share *no*
mutable state (distinct lock managers, logs, version chains), which is
where the near-linear scaling on disjoint workloads comes from.

A transaction that wrote on two or more shards commits via two-phase
commit (records in :mod:`repro.wal.twopc`):

1. **prepare** — every participant persists its redo frames and a
   per-shard prepare record, withholding its commit word (the commit
   word IS a shard-local commit mark; publishing it early would let a
   crash commit half a transaction).  FAST⁺'s in-place path is always
   bypassed for participants, for the same reason.
2. **decide** — the coordinator record persists the commit decision
   (the transaction's global commit point).
3. **commit** — each participant publishes its withheld commit word,
   clears its prepare record, and checkpoints.
4. the decision record is cleared.

Recovery (presumed abort) resolves in-doubt shards from those records:

====================  ======================  ===========================
prepare record        coordinator decision    resolution
====================  ======================  ===========================
absent                —                       plain single-shard recovery
present, mark set     —                       stale record: clear it
present, no mark      matching commit         re-publish the commit word
                                              from the saved (seq, tail),
                                              then replay the frames
present, no mark      absent / other gtid     presumed abort: clear the
                                              record, frames are garbage
====================  ======================  ===========================

The cooperative scheduler guarantees at most one transaction is ever
between decision and completion, so one decision word suffices; attach
always ends with every prepare record and the decision word clear.
"""

from dataclasses import replace
from zlib import crc32

from repro.core import engine_class
from repro.core.base import TransactionError
from repro.core.locking import find_cycle
from repro.core.session import Session
from repro.obs import trace as ev
from repro.pm.clock import SimClock
from repro.pm.memory import PersistentMemory
from repro.pm.stats import MemoryStats
from repro.wal.twopc import CoordinatorLog

#: Shard index bits OR-ed into lock resource ids (page numbers and
#: root slots stay far below 2**24).
SHARD_NS_SHIFT = 24

#: Cache-line-rounded region sizes.
_TWOPC_BYTES = 64
_COORD_BYTES = 64

#: Schemes a router can shard: both commit through the slot-header
#: log, whose withheld commit word is what makes prepare possible.
SHARDABLE_SCHEMES = ("fast", "fastplus")


def shard_config(config, index):
    """The per-shard config: ``config``'s geometry at shard ``index``'s
    slice, with a 2PC prepare region appended."""
    span = shard_span(config)
    return replace(
        config, base_offset=index * span, twopc_bytes=_TWOPC_BYTES,
    )


def shard_span(config):
    """Bytes one shard's slice occupies."""
    return replace(config, twopc_bytes=_TWOPC_BYTES).arena_bytes


def total_arena_bytes(config, nshards):
    """Bytes the whole sharded arena occupies (incl. the coordinator)."""
    return nshards * shard_span(config) + _COORD_BYTES


class ShardRouter:
    """N per-shard engines behind one engine-shaped facade.

    Quacks like an :class:`repro.core.base.Engine` everywhere the
    scheduler, benches, and crash harnesses look: ``session()``,
    ``lock_manager``, ``scheme`` / ``obs`` / ``clock`` / ``config``,
    and the committed-read conveniences (``search`` / ``scan`` /
    ``verify`` / ``garbage_collect`` fan out over the shards).
    """

    supports_sessions = True

    def __init__(self, config, pm, shards, coordinator):
        self.config = config        # the base (per-shard) geometry
        self.pm = pm
        self.obs = pm.obs
        self.shards = shards
        self.coordinator = coordinator
        self.nshards = len(shards)
        self._sessions = {}
        self._next_sid = 1
        self._next_gtid = 1
        self._lock_facade = None
        #: False while a group-committed 2PC decision is still covered
        #: by an open epoch somewhere (its participants' marks may not
        #: all be durable, so the decision word must not be cleared
        #: yet).  Settled again once those epochs close.
        self._twopc_settled = True
        #: Per-shard labeled outcome counters ("shard.<i>.commit"...).
        self._shard_obs = [
            self.obs.labeled("shard.%d" % index)
            for index in range(self.nshards)
        ]
        # OCC read-set/publish events pack lock-style resource words;
        # namespacing each shard's version manager keeps them distinct
        # in the global trace (mirrors Session.resource_namespace).
        for index, shard in enumerate(shards):
            shard.version_manager.event_namespace = index << SHARD_NS_SHIFT

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build_pm(cls, config, nshards):
        """One arena sized for ``nshards`` slices + the coordinator."""
        return PersistentMemory(
            total_arena_bytes(config, nshards),
            latency=config.latency,
            cost=config.cost,
            clock=SimClock(),
            stats=MemoryStats(),
            atomic_granularity=config.atomic_granularity,
            cache_lines=config.cache_lines,
            flush_instruction=config.flush_instruction,
        )

    @classmethod
    def create(cls, config, nshards, *, scheme=None, pm=None):
        """Format a fresh sharded arena: N shard engines + coordinator."""
        scheme = scheme or config.scheme
        if scheme not in SHARDABLE_SCHEMES:
            raise ValueError(
                "scheme %r cannot be sharded (2PC needs the withheld "
                "slot-header commit word; choose from %s)"
                % (scheme, ", ".join(SHARDABLE_SCHEMES))
            )
        engine_cls = engine_class(scheme)
        pm = pm or cls.build_pm(config, nshards)
        shards = [
            engine_cls.create(shard_config(config, index), pm=pm)
            for index in range(nshards)
        ]
        coordinator = CoordinatorLog.format(
            pm, nshards * shard_span(config)
        )
        return cls(config, pm, shards, coordinator)

    @classmethod
    def attach(cls, config, nshards, pm, *, scheme=None):
        """Re-open a sharded arena post-crash: resolve in-doubt 2PC
        participants from the durable records (the recovery matrix in
        the module docstring), then run each shard's own recovery."""
        from repro.storage.pagestore import PageStore

        scheme = scheme or config.scheme
        engine_cls = engine_class(scheme)
        coordinator = CoordinatorLog.attach(pm, nshards * shard_span(config))
        decided = coordinator.decided_commit()
        shards = []
        for index in range(nshards):
            cfg = shard_config(config, index)
            store = PageStore.attach(pm, cfg.store_base)
            engine = engine_cls(cfg, pm, store)
            engine._attach_regions()
            record = engine.twopc.prepared()
            if record is not None:
                gtid, seq, tail = record
                if engine.log.pending_bytes():
                    # The crash hit between this shard's commit mark
                    # and the prepare-record clear: the mark already
                    # decides, the record is stale.
                    engine.twopc.clear()
                elif decided == gtid:
                    # In-doubt, coordinator says commit: re-publish
                    # the withheld commit word; the shard's normal
                    # recovery below replays the (durable) frames.
                    engine.log.restore_commit(seq, tail)
                    engine.twopc.clear()
                    pm.obs.inc("twopc.resolve.commit")
                else:
                    # Presumed abort: no commit decision on record,
                    # so the durable frames are garbage.
                    engine.twopc.clear()
                    pm.obs.inc("twopc.resolve.abort")
            engine.recover()
            shards.append(engine)
        coordinator.clear()
        return cls(config, pm, shards, coordinator)

    # ------------------------------------------------------------------
    # Engine facade
    # ------------------------------------------------------------------

    @property
    def scheme(self):
        return self.shards[0].scheme

    @property
    def clock(self):
        return self.pm.clock

    @property
    def stats(self):
        return self.pm.stats

    @property
    def registry(self):
        return self.obs.registry

    @property
    def trace(self):
        return self.obs.trace

    @property
    def lock_manager(self):
        """The cross-shard lock facade (scheduler-facing)."""
        if self._lock_facade is None:
            self._lock_facade = ShardLockFacade(self)
        return self._lock_facade

    def shard_of(self, key):
        """The shard index owning ``key``."""
        return crc32(key) % self.nshards

    def next_gtid(self):
        gtid = self._next_gtid
        self._next_gtid += 1
        return gtid

    def session(self, name=None, read_only=False, isolation=None):
        """Open a sharded session (one concurrent client)."""
        if isolation is None:
            isolation = "read_only" if read_only else "locked"
        if isolation not in ("locked", "read_only", "occ"):
            raise ValueError(
                "unknown isolation %r (choose locked, read_only or occ)"
                % (isolation,)
            )
        sid = self._next_sid
        self._next_sid += 1
        session = ShardedSession(
            self, sid, name or ("s%d" % sid), isolation=isolation,
        )
        self._sessions[sid] = session
        self.obs.inc("engine.session.open")
        return session

    def _session_closed(self, session):
        self._sessions.pop(session.sid, None)

    def sessions(self):
        return list(self._sessions.values())

    # -- committed-state conveniences (fan out over the shards) ---------

    def insert(self, key, value, *, root_slot=0, replace=False):
        """Single-statement autocommit on the owning shard."""
        self.shards[self.shard_of(key)].insert(
            key, value, root_slot=root_slot, replace=replace,
        )

    def search(self, key, *, root_slot=0):
        return self.shards[self.shard_of(key)].search(key, root_slot=root_slot)

    @property
    def page_caches(self):
        """The per-shard DRAM cache tiers (empty when cache off).

        ``dram_cache_pages`` is per-shard geometry: each shard engine
        fronts its own arena slice with its own
        :class:`repro.storage.cache.TieredPageCache`, and invalidation
        stays shard-local — page numbers are shard-local, and every
        install (including a cross-shard 2PC transaction's per-shard
        installs) runs inside the owning shard's commit machinery,
        which already drops the affected frames.  Counters aggregate
        naturally: all shards share one arena's registry, so
        ``cache.hit`` et al. are fleet-wide totals."""
        return tuple(
            shard.page_cache for shard in self.shards
            if shard.page_cache is not None
        )

    def scan(self, lo=None, hi=None, *, root_slot=0):
        """Merged committed scan over every shard, in key order."""
        rows = []
        for shard in self.shards:
            rows.extend(shard.scan(lo, hi, root_slot=root_slot))
        rows.sort(key=lambda kv: kv[0])
        return rows

    def verify(self, root_slot=0):
        """Per-shard structural checks; returns the total record count."""
        return sum(shard.verify(root_slot) for shard in self.shards)

    def garbage_collect(self):
        """Per-shard GC: each shard consults only its *own* sessions
        and version-chain pins, so one shard's long-lived snapshot
        never protects (or retains) another shard's pages."""
        return sum(shard.garbage_collect() for shard in self.shards)

    # -- group commit ----------------------------------------------------

    @property
    def group_commit(self):
        """Is epoch-pipelined group commit on (it is per-shard)?"""
        return self.shards[0].group is not None

    def _settle_twopc(self):
        """Make the previous group-committed 2PC transaction's marks
        durable and clear the decision word.

        A grouped 2PC decision rides the epoch of its last participant
        (see :meth:`ShardedTransaction._commit_two_phase`); until every
        epoch holding one of its participants closes, some commit marks
        are still pending and the decision word must stay on record so
        a crash re-publishes them.  Called before the *next* decision
        is persisted — the single decision word is reused only once the
        previous transaction has fully completed."""
        if self._twopc_settled:
            return
        for shard in self.shards:
            group = shard.group
            if group is not None and any(
                member.get("twopc_clear") for member in group.members
            ):
                group.close()
        self.coordinator.clear()
        self._twopc_settled = True

    def drain_group_commit(self):
        """End-of-run durability barrier: close every shard's open
        epoch, then settle any outstanding 2PC decision (exactly a
        no-op with grouping off)."""
        for shard in self.shards:
            drain = getattr(shard, "drain_group_commit", None)
            if drain is not None:
                drain()
        if not self._twopc_settled:
            self.coordinator.clear()
            self._twopc_settled = True


class ShardLockFacade:
    """Routes lock-manager calls to the owning shard's manager.

    Resources carry their shard in the id's high bits (see
    ``SHARD_NS_SHIFT``), so every per-resource call dispatches in O(1);
    owner-wide calls (release, deadlock search) fan out and merge.
    Deadlock detection runs over the union of the per-shard wait-for
    graphs — a cycle through two shards is still a cycle.
    """

    def __init__(self, router):
        self.router = router
        self._wait_shard = {}    # owner -> shard index of its one wait

    def _manager(self, resource):
        index = resource[1] >> SHARD_NS_SHIFT
        return self.router.shards[index].lock_manager, index

    def start_wait(self, owner, resource, mode):
        manager, index = self._manager(resource)
        self._wait_shard[owner] = index
        manager.start_wait(owner, resource, mode)

    def stop_wait(self, owner):
        index = self._wait_shard.pop(owner, None)
        if index is not None:
            self.router.shards[index].lock_manager.stop_wait(owner)

    def waiting(self, owner):
        index = self._wait_shard.get(owner)
        if index is None:
            return None
        return self.router.shards[index].lock_manager.waiting(owner)

    def blockers(self, owner, resource, mode):
        manager, _index = self._manager(resource)
        return manager.blockers(owner, resource, mode)

    def release_all(self, owner):
        released = 0
        for shard in self.router.shards:
            if shard._lock_manager is not None:
                released += shard._lock_manager.release_all(owner)
        self._wait_shard.pop(owner, None)
        return released

    def wait_edges(self):
        """The union wait-for graph (each owner waits on at most one
        resource globally, so per-shard maps never collide)."""
        edges = {}
        for shard in self.router.shards:
            if shard._lock_manager is not None:
                edges.update(shard._lock_manager.wait_edges())
        return edges

    def find_deadlock(self, owner):
        return find_cycle(self.wait_edges(), owner)


class ShardedSession:
    """One client's transaction scope across every shard.

    Holds one lazily-created *inner* :class:`repro.core.session.Session`
    per shard actually touched — quiet (the router emits the single
    global TXN event and outcome counter per transaction) and
    namespaced (its lock resources carry the shard index).  All inner
    sessions share this session's global sid, which is unambiguous
    because each lives in a different shard engine.
    """

    def __init__(self, router, sid, name, *, read_only=False,
                 isolation=None):
        self.engine = router
        self.router = router
        self.sid = sid
        self.name = name
        if isolation is None:
            isolation = "read_only" if read_only else "locked"
        #: Same three-mode state machine as a native session's
        #: (locked / read_only / occ) — the OCC fallback streak lives
        #: HERE, not on the quiet inner legs: one validation failure
        #: anywhere fails the whole transaction, and the fallback
        #: decision must flip every leg to 2PL together.
        self.isolation = isolation
        self.read_only = isolation == "read_only"
        self._occ_failures = 0
        self.segment_name = "session.%s" % name
        self.obs = router.obs.labeled("session.%s" % name)
        self._clock = router.clock
        self._inner = {}         # shard index -> inner Session
        self._txn = None
        self.closed = False

    @property
    def locking(self):
        return not self.read_only

    @property
    def lock_manager(self):
        return None if self.read_only else self.router.lock_manager

    def _occ_failed(self):
        """Count one failed validation/install toward the fallback."""
        self._occ_failures += 1

    @property
    def in_transaction(self):
        return self._txn is not None

    def _inner_session(self, index):
        session = self._inner.get(index)
        if session is None:
            shard = self.router.shards[index]
            session = Session(
                shard, self.sid, self.name,
                lock_manager=None if self.read_only else shard.lock_manager,
                isolation=self.isolation,
                quiet=True,
                resource_namespace=index << SHARD_NS_SHIFT,
            )
            # Registered so the shard's GC protects this session's
            # uncommitted pages exactly like a native session's.
            shard._sessions[self.sid] = session
            self._inner[index] = session
        return session

    def transaction(self):
        if self.closed:
            raise TransactionError("session %r is closed" % self.name)
        if self._txn is not None:
            raise TransactionError(
                "session %r already has an open transaction" % self.name
            )
        txn = ShardedTransaction(self)
        self._txn = txn
        self.router.obs.inc("engine.txn.begin")
        self.router.obs.event(ev.TXN_BEGIN, self.sid)
        return txn

    def op_segment(self):
        return self._clock.segment(self.segment_name)

    def _txn_finished(self, txn, committed):
        """Global transaction epilogue: the per-shard lock releases and
        snapshot ends have already been emitted by the inner sessions,
        so the TXN event lands after them (strict 2PL event order)."""
        if self._txn is txn:
            self._txn = None
        if committed and self.isolation == "occ":
            self._occ_failures = 0
        self.obs.inc("commit" if committed else "abort")
        self.router.obs.event(
            ev.TXN_COMMIT if committed else ev.TXN_ABORT, self.sid
        )

    # -- autocommit conveniences ------------------------------------------

    def insert(self, key, value, *, root_slot=0, replace=False):
        with self.transaction() as txn:
            txn.insert(key, value, root_slot=root_slot, replace=replace)

    def search(self, key, *, root_slot=0):
        with self.transaction() as txn:
            return txn.search(key, root_slot=root_slot)

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        if self.closed:
            return
        if self._txn is not None:
            self._txn.rollback()
        for index in sorted(self._inner):
            self._inner[index].close()
        self.closed = True
        self.router._session_closed(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        state = "txn open" if self._txn is not None else "idle"
        return "ShardedSession(%r, %s)" % (self.name, state)


class _IdleCtx:
    """What ``ShardedTransaction.ctx`` exposes before any op ran (the
    scheduler only ever reads ``op_mutated`` off it)."""

    op_mutated = False


_IDLE_CTX = _IdleCtx()


class ShardedTransaction:
    """One transaction spanning any subset of the shards.

    Operations route by key; the first touch of a shard opens an inner
    leg transaction there (for read-only sessions this is also where
    that shard's snapshot pins — untouched shards pin nothing and
    retain nothing).  Commit picks the cheapest sufficient protocol:
    zero or one writer shard commits natively (FAST⁺ in-place still
    applies), two or more commit via 2PC.
    """

    def __init__(self, session):
        self.session = session
        self.router = session.router
        self._txns = {}          # shard index -> inner Transaction
        self._op_ctx = _IDLE_CTX
        self._done = False
        #: Does this transaction run optimistically?  Decided once at
        #: begin — the fallback policy (mirroring Session._begin_mode)
        #: must flip every leg together, so the quiet inner sessions
        #: are forced locked rather than consulting their own streaks.
        self.occ = False
        if session.isolation == "occ":
            config = self.router.config
            if (session._occ_failures
                    >= config.occ_max_validation_failures):
                self.router.obs.inc("occ.fallback")
                self.router.obs.event(
                    ev.OCC_FALLBACK, session.sid, session._occ_failures
                )
            else:
                self.occ = True

    @property
    def ctx(self):
        """The current operation's shard-local context — what the
        scheduler consults (``op_mutated``) after a conflict."""
        return self._op_ctx

    @property
    def shards_touched(self):
        return sorted(self._txns)

    def _leg(self, key):
        index = self.router.shard_of(key)
        txn = self._txns.get(index)
        if txn is None:
            inner = self.session._inner_session(index)
            if self.session.isolation == "occ":
                inner.force_locked = not self.occ
            txn = inner.transaction()
            self._txns[index] = txn
        self._op_ctx = txn.ctx
        return txn

    # -- data operations ---------------------------------------------------

    def insert(self, key, value, *, root_slot=0, replace=False):
        self._check_open()
        self._leg(key).insert(key, value, root_slot=root_slot, replace=replace)

    def update(self, key, value, *, root_slot=0):
        self._check_open()
        return self._leg(key).update(key, value, root_slot=root_slot)

    def delete(self, key, *, root_slot=0):
        self._check_open()
        return self._leg(key).delete(key, root_slot=root_slot)

    def search(self, key, *, root_slot=0):
        self._check_open()
        return self._leg(key).search(key, root_slot=root_slot)

    # -- lifecycle ---------------------------------------------------------

    def _is_writer(self, txn):
        if self.session.read_only:
            return False
        if getattr(txn, "_occ", False):
            # An OCC leg is a writer only once its write set installed
            # (validation-failed or read-only legs have no scheme ctx
            # to commit or roll back).
            return txn.ctx.installed_ctx is not None
        return not txn.inner_ctx.is_read_only

    def _occ_prepare(self, legs):
        """Per-shard OCC validation + install — the optimistic analogue
        of the prepare phase, run before any leg is marked finished.

        Every leg first validates its read set against its own shard's
        version stamps (zero locks, so a failure aborts for free);
        only then does each writer leg unpin its snapshot and install
        its write set into a lock-managed context on its shard.  Any
        conflict unwinds the already-installed legs precisely and
        re-raises with the transaction still open and rollbackable,
        counting one failure toward the session's 2PL-fallback streak.
        """
        from repro.core.occ import OCCConflict

        router = self.router
        installed = []
        try:
            with self.session.op_segment():
                for _index, txn in legs:
                    txn.ctx.validate()
                for index, txn in legs:
                    octx = txn.ctx
                    octx.unpin()
                    if not octx.has_writes:
                        continue
                    octx.replay_into(self.session._inner[index])
                    installed.append((index, octx))
        except OCCConflict:
            for index, octx in installed:
                router.shards[index]._rollback_precise(octx.installed_ctx)
                octx.installed_ctx = None
            self.session._occ_failed()
            raise
        if installed:
            # Mirrors occ_commit: a write-free optimistic commit
            # installed nothing and doesn't count as an OCC commit.
            router.obs.inc("occ.commit")

    def commit(self):
        self._check_open()
        legs = sorted(self._txns.items())
        if self.occ:
            # May raise OCCConflict — deliberately before any leg is
            # marked done, so the conflicted transaction stays open.
            self._occ_prepare(legs)
        self._done = True
        for _index, txn in legs:
            txn._done = True
        writers = [(i, txn) for i, txn in legs if self._is_writer(txn)]
        try:
            with self.session.op_segment():
                if len(writers) == 1:
                    # Single-shard commit: the native protocol applies
                    # unchanged (including FAST⁺'s in-place path).
                    index, txn = writers[0]
                    self.router.shards[index]._commit(txn.inner_ctx)
                elif writers:
                    self._commit_two_phase(writers)
            self.router.obs.inc("engine.txn.commit")
            for index, _txn in writers:
                self.router._shard_obs[index].inc("commit")
        finally:
            # Per-leg epilogues (lock releases, snapshot unpins) come
            # before the single global TXN event.
            for _index, txn in legs:
                txn.session._txn_finished(txn, committed=True)
            self.session._txn_finished(self, committed=True)

    def _commit_two_phase(self, writers):
        """The cross-shard commit (module docstring, steps 1-4).

        With group commit on, the decision joins the epoch of the last
        participant: prepares stay individually fenced (a prepare must
        be durable before the decision), but the decision word is only
        flushed — the shared fence of that participant's epoch close
        completes it together with every member's frames, and the
        participants' commit marks ride their shards' group marks
        instead of being published per transaction.  The single
        decision word is recycled by :meth:`ShardRouter._settle_twopc`
        before the next decision is persisted."""
        router = self.router
        grouped = router.group_commit
        if grouped:
            router._settle_twopc()
        gtid = router.next_gtid()
        prepared = []
        try:
            for index, txn in writers:
                seq = router.shards[index].prepare_commit(
                    txn.inner_ctx, gtid, index,
                )
                prepared.append((index, txn, seq))
        except Exception:
            # A participant failed to prepare (log full...): abort the
            # ones already prepared — their frames are durable but
            # unpublished, so clearing the records aborts cleanly.
            for index, txn, _seq in prepared:
                router.shards[index].abort_prepared(txn.inner_ctx)
            raise
        router.coordinator.decide_commit(gtid, fence=not grouped)
        router.obs.event(ev.TWOPC_DECISION, gtid, (len(writers) << 1) | 1)
        for index, txn, seq in prepared:
            router.shards[index].commit_prepared(txn.inner_ctx, gtid, seq, index)
        if grouped:
            # The decision now rides the participants' open epochs:
            # the next sfence anywhere in the arena (an epoch close,
            # the next transaction's prepare) completes its flush, and
            # the participants' marks arrive with their group marks.
            # Until those epochs close the decision word stays on
            # record so a crash re-publishes prepared-but-unmarked
            # shards — _settle_twopc completes it before the word is
            # reused, drain_group_commit at the end of a run.
            router._twopc_settled = False
        else:
            router.coordinator.clear()

    def rollback(self):
        self._check_open()
        self._done = True
        legs = sorted(self._txns.items())
        with self.session.op_segment():
            for index, txn in legs:
                txn._done = True
                if self._is_writer(txn):
                    self.router.shards[index]._rollback_precise(txn.inner_ctx)
        self.router.obs.inc("engine.txn.rollback")
        for index, txn in legs:
            if self._is_writer(txn):
                self.router._shard_obs[index].inc("abort")
        for _index, txn in legs:
            txn.session._txn_finished(txn, committed=False)
        self.session._txn_finished(self, committed=False)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._done:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False

    def _check_open(self):
        if self._done:
            raise TransactionError("transaction already finished")
