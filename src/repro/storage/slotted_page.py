"""The failure-atomic slotted page (paper Sections 3.1-3.3).

Layout of a page of ``page_size`` bytes::

    +--------+--------------------------+------------~~~+------------+
    | fixed  | record offset array      |  free space   | record     |
    | 8 B    | u16 x nrecords (grows ->)|               | content    |
    |        |                          |   (<- grows)  | area       |
    +--------+--------------------------+------------~~~+------------+
    0        8                          header_end      content_start

Fixed metadata (8 bytes, so that one 64-byte cache line holds it plus
28 two-byte record offsets — the paper's ``(64-8)/2`` bound for FAST⁺
leaf pages):

    offset 0  u8   page type (free / leaf / internal / meta)
    offset 1  u8   flags
    offset 2  u16  number of records
    offset 4  u16  content_start — beginning of the record content area
    offset 6  u16  free-list head (0 = empty)

A record cell is ``u16 payload length`` followed by the payload; cells
are allocated backward from ``content_start`` or carved out of the
in-page free list of reclaimed cells.

Failure-atomicity protocol
--------------------------
The slot header *is* the per-page commit mark.  All mutation therefore
goes through a two-phase API:

1. ``pending_insert / pending_update / pending_delete`` write record
   bytes into free space (never over live data) and update only a
   *volatile* pending copy of the header — the paper's "new record
   offset array constructed in the CPU cache";
2. the commit scheme then either writes ``pending_header_image()`` to
   the page in one failure-atomic cache-line store (in-place commit,
   Section 3.2) or redo-logs it and checkpoints after the transaction's
   commit mark (slot-header logging, Section 3.3).

A crash before step 2 leaves the durable header untouched, so the
partially written record bytes are unreachable free space (paper
Section 4.4: "perishable scratch space").

The free list is intentionally *not* crash-consistent: it is fully
reconstructible from the record offset array (Section 4.3), which
:meth:`rebuild_free_list` implements.
"""

import struct as _struct

FIXED_HEADER_SIZE = 8
SLOT_SIZE = 2
# Cell header: u16 payload length + u16 allocated size.  Recording the
# allocated size (not just the payload length) keeps free-list
# reconstruction exact even when a free-chunk allocation absorbed an
# unusably small remainder.
CELL_HEADER_SIZE = 4
_MIN_CHUNK = 4

PAGE_FREE = 0
PAGE_LEAF = 1
PAGE_INTERNAL = 2
PAGE_META = 3
PAGE_OVERFLOW = 4

_OFF_TYPE = 0
_OFF_FLAGS = 1
_OFF_NRECORDS = 2
_OFF_CONTENT_START = 4
_OFF_FREELIST = 6


class PageFullError(Exception):
    """The page cannot hold the record (split or defragment needed).

    ``needs_defrag`` is True when the *total* free space would suffice
    but no contiguous chunk does (paper Section 4.3's trigger for
    copy-on-write defragmentation).
    """

    def __init__(self, message, needs_defrag=False):
        super().__init__(message)
        self.needs_defrag = needs_defrag


class RecordTooLargeError(Exception):
    """The record cannot fit even in an empty page."""


def max_header_records(header_budget):
    """How many record offsets fit in ``header_budget`` header bytes
    (the paper's 28 for a 64-byte cache line)."""
    return (header_budget - FIXED_HEADER_SIZE) // SLOT_SIZE


class _PendingHeader:
    """Volatile (CPU-cache) copy of a page's slot header."""

    __slots__ = ("page_type", "flags", "content_start", "freelist_head",
                 "offsets")

    def __init__(self, page_type, flags, content_start, freelist_head, offsets):
        self.page_type = page_type
        self.flags = flags
        self.content_start = content_start
        self.freelist_head = freelist_head
        self.offsets = offsets

    @property
    def nrecords(self):
        return len(self.offsets)

    def clone(self):
        return _PendingHeader(
            self.page_type, self.flags, self.content_start,
            self.freelist_head, list(self.offsets),
        )


class SlottedPage:
    """A slotted page at ``base`` within a ``PersistentMemory``.

    Args:
        pm: the persistent memory holding the page.
        base: byte address of the page start (cache-line aligned).
        page_size: page size in bytes.
        header_capacity: optional cap on the number of record offsets
            (FAST⁺ leaf pages use 28 so the header fits one cache
            line); ``None`` means limited only by free space.
    """

    def __init__(self, pm, base, page_size, header_capacity=None):
        self.pm = pm
        self.base = base
        self.page_size = page_size
        self.header_capacity = header_capacity
        self._pending = None
        # While a pending header exists, no allocation may dip below
        # the *committed* header's extent: those bytes are still the
        # durable offset array a crash would recover from.
        self._floor = 0
        # Lazy free-list validation (paper Section 4.3): the list is
        # checked against the offset array on first use and rebuilt if
        # a crash left it inconsistent — so recovery never has to walk
        # pages eagerly.
        self._freelist_checked = False

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------

    @classmethod
    def initialize(cls, pm, base, page_size, page_type, *, header_capacity=None,
                   persist=True):
        """Format a fresh page of ``page_type`` and return it."""
        page = cls(pm, base, page_size, header_capacity)
        pm.write(base + _OFF_TYPE, bytes([page_type]))
        pm.write(base + _OFF_FLAGS, b"\x00")
        pm.write_u16(base + _OFF_NRECORDS, 0)
        pm.write_u16(base + _OFF_CONTENT_START, page_size)
        pm.write_u16(base + _OFF_FREELIST, 0)
        if persist:
            pm.persist(base, FIXED_HEADER_SIZE)
        return page

    # ------------------------------------------------------------------
    # Header accessors (pending overlay wins)
    # ------------------------------------------------------------------

    @property
    def page_type(self):
        if self._pending is not None:
            return self._pending.page_type
        return self.pm.read(self.base + _OFF_TYPE, 1)[0]

    @property
    def cell_align(self):
        """Cell-allocation alignment.

        Internal B-tree pages align cells to 8 bytes so that the child
        pointer at the start of each cell payload (4-byte cell header +
        4-byte pointer = one word) can be overwritten failure-atomically
        during copy-on-write pointer swaps.  Other pages pack at 2.
        """
        return 8 if self.page_type == PAGE_INTERNAL else 2

    @property
    def flags(self):
        if self._pending is not None:
            return self._pending.flags
        return self.pm.read(self.base + _OFF_FLAGS, 1)[0]

    @property
    def nrecords(self):
        if self._pending is not None:
            return self._pending.nrecords
        return self.pm.read_u16(self.base + _OFF_NRECORDS)

    @property
    def content_start(self):
        if self._pending is not None:
            return self._pending.content_start
        return self.pm.read_u16(self.base + _OFF_CONTENT_START)

    @property
    def freelist_head(self):
        if self._pending is not None:
            return self._pending.freelist_head
        return self.pm.read_u16(self.base + _OFF_FREELIST)

    def slot_offset(self, slot):
        """Content-area offset of the record in ``slot``."""
        if self._pending is not None:
            return self._pending.offsets[slot]
        if not 0 <= slot < self.nrecords:
            raise IndexError("slot %d out of range" % slot)
        return self.pm.read_u16(self.base + FIXED_HEADER_SIZE + SLOT_SIZE * slot)

    def slots(self):
        """All record offsets, in slot order."""
        if self._pending is not None:
            return list(self._pending.offsets)
        count = self.nrecords
        if not count:
            return []
        raw = self.pm.read(self.base + FIXED_HEADER_SIZE, SLOT_SIZE * count)
        return [
            int.from_bytes(raw[i : i + SLOT_SIZE], "little")
            for i in range(0, len(raw), SLOT_SIZE)
        ]

    def header_length(self):
        """Length in bytes of the effective slot header."""
        return FIXED_HEADER_SIZE + SLOT_SIZE * self.nrecords

    def header_image(self):
        """The effective slot header as bytes (fixed part + offsets)."""
        if self._pending is not None:
            return self._encode(self._pending)
        return self.pm.read(self.base, self.header_length())

    def committed_header_image(self):
        """The header as currently stored in the page, ignoring any
        pending overlay (mid-transaction this is the committed state:
        transactions never write the in-page header before commit)."""
        count = self.pm.read_u16(self.base + _OFF_NRECORDS)
        return self.pm.read(self.base, FIXED_HEADER_SIZE + SLOT_SIZE * count)

    def committed_offsets(self):
        """Record offsets of the committed (in-page) header."""
        image = self.committed_header_image()
        return [
            int.from_bytes(image[i : i + SLOT_SIZE], "little")
            for i in range(FIXED_HEADER_SIZE, len(image), SLOT_SIZE)
        ]

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------

    def record(self, slot):
        """Payload bytes of the record in ``slot``.

        Equivalent to ``read_cell(slot_offset(slot))`` with the two
        wrappers inlined — this is the B-tree search probe, the single
        hottest call in the system (same simulated loads either way).
        """
        pm = self.pm
        base = self.base
        pending = self._pending
        if pending is not None:
            offset = pending.offsets[slot]
        else:
            if not 0 <= slot < pm.read_u16(base + _OFF_NRECORDS):
                raise IndexError("slot %d out of range" % slot)
            offset = pm.read_u16(base + FIXED_HEADER_SIZE + SLOT_SIZE * slot)
        length = pm.read_u16(base + offset)
        return pm.read(base + offset + CELL_HEADER_SIZE, length)

    def read_cell(self, offset):
        """Payload of the cell at content-area ``offset``."""
        length = self.pm.read_u16(self.base + offset)
        return self.pm.read(self.base + offset + CELL_HEADER_SIZE, length)

    def cell_allocated_size(self, offset):
        """Bytes the cell at ``offset`` occupies (header + padding +
        any absorbed free-chunk remainder)."""
        return self.pm.read_u16(self.base + offset + 2)

    def records(self):
        """All record payloads in slot order."""
        return [self.read_cell(offset) for offset in self.slots()]

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------

    def header_end(self, nrecords=None):
        count = self.nrecords if nrecords is None else nrecords
        return FIXED_HEADER_SIZE + SLOT_SIZE * count

    def contiguous_free(self):
        """Free bytes between the offset array and the content area."""
        return self.content_start - self.header_end()

    def free_chunks(self):
        """(offset, size) of every free-list chunk, in list order."""
        chunks = []
        offset = self.freelist_head
        seen = set()
        while offset and offset not in seen:
            seen.add(offset)
            size = self.pm.read_u16(self.base + offset)
            nxt = self.pm.read_u16(self.base + offset + 2)
            chunks.append((offset, size))
            offset = nxt
        return chunks

    def total_free(self):
        """Contiguous free space plus all free-list chunks."""
        return self.contiguous_free() + sum(size for _, size in self.free_chunks())

    def fits(self, payload_len, extra_slots=1):
        """Can a record of ``payload_len`` bytes be inserted (possibly
        after defragmentation)?"""
        if self.header_capacity is not None and (
            self.nrecords + extra_slots > self.header_capacity
        ):
            return False
        need = self._cell_need(payload_len)
        return self.total_free() >= need + SLOT_SIZE * extra_slots

    def fits_after_copy(self, payload_len, extra_slots=1):
        """Would the record fit once live records are copied
        contiguously into a fresh page?  This is the trigger for the
        paper's copy-on-write defragmentation (Section 4.3), including
        the same-transaction reinsert-into-an-overflowing-page case:
        cells made dead by *this* transaction cannot be reused in
        place, but a copy-on-write page reclaims their space."""
        if self.header_capacity is not None and (
            self.nrecords + extra_slots > self.header_capacity
        ):
            return False
        need = self._cell_need(payload_len)
        live = sum(self.cell_allocated_size(offset) for offset in self.slots())
        return (
            self.header_end(self.nrecords + extra_slots) + need + live
            <= self.page_size
        )

    # ------------------------------------------------------------------
    # Two-phase mutation: content writes + volatile pending header
    # ------------------------------------------------------------------

    def begin_pending(self):
        """Load the durable header into the volatile pending copy.

        Also the lazy free-list correction point (paper Section 4.3):
        at this boundary the page holds only committed state, so an
        inconsistent list (stale after a crash) can be rebuilt safely
        from the committed offset array before any pending mutation.
        """
        if self._pending is None:
            if not self._freelist_checked:
                self._freelist_checked = True
                if self.freelist_head and not self.free_list_consistent():
                    self.rebuild_free_list()
            self._floor = self.header_length()
            self._pending = self._decode(self.header_image())
        return self._pending

    @property
    def has_pending(self):
        return self._pending is not None

    def overlay_header(self, image):
        """Install ``image`` as this page's volatile header overlay.

        Group commit: an epoch member's header image is redo-logged
        and covered by the shared group mark, but not yet applied to
        the page (the coalesced checkpoint runs at epoch close).
        Until then every fresh fetch of the page must see the member's
        committed state — this installs it as the pending overlay.

        The free-list consistency check is deliberately skipped (and
        marked done): judged against the *durable* offset array the
        member's new cells look dead, and a rebuild would hand live
        cells back to the allocator.  The in-PM free list is already
        consistent with the overlay — the member's allocations updated
        it in place.  The floor protects both the durable offset array
        (still what a crash pre-checkpoint replays over) and the
        overlay's own extent.
        """
        self._freelist_checked = True
        self._floor = max(len(self.committed_header_image()), len(image))
        self._pending = self._decode(image)
        return self._pending

    def clone_pending(self):
        """A snapshot of the pending header (None if clean) — used by
        savepoints for partial rollback."""
        return None if self._pending is None else self._pending.clone()

    def restore_pending(self, snapshot):
        """Reinstate a snapshot taken by :meth:`clone_pending`.

        The in-page free list is rebuilt from the restored offset
        array: chunks consumed after the savepoint become free again
        and cells written after it return to free space (they were
        never reachable from a committed header).
        """
        self._pending = None if snapshot is None else snapshot.clone()
        if self._pending is not None and self._floor == 0:
            self._floor = len(self.committed_header_image())
        self.rebuild_free_list()

    def discard_pending(self):
        """Forget all uncommitted header changes (rollback).

        Record bytes already written into free space stay where they
        are — they are unreachable, and the free list is rebuilt from
        the committed offset array.
        """
        self._pending = None
        self.rebuild_free_list()

    def pending_insert(self, slot, payload):
        """Write ``payload`` into free space; add it at ``slot`` in the
        pending header.  Returns the cell offset."""
        pending = self.begin_pending()
        if self.header_capacity is not None and (
            pending.nrecords + 1 > self.header_capacity
        ):
            raise PageFullError("offset array at header capacity")
        offset = self._allocate_cell(payload)
        pending.offsets.insert(slot, offset)
        return offset

    def pending_update(self, slot, payload):
        """Out-of-place update (paper Section 3.2): write the new
        version into free space and repoint the pending slot."""
        pending = self.begin_pending()
        offset = self._allocate_cell(payload)
        pending.offsets[slot] = offset
        return offset

    def pending_delete(self, slot):
        """Remove ``slot`` from the pending header (the cell itself is
        reclaimed only after commit)."""
        pending = self.begin_pending()
        pending.offsets.pop(slot)

    def pending_set_type(self, page_type):
        self.begin_pending().page_type = page_type

    def pending_header_image(self):
        """The pending header serialised — what gets redo-logged or
        written by the in-place commit."""
        if self._pending is None:
            raise RuntimeError("no pending changes")
        return self._encode(self._pending)

    def flush_record(self, offset, payload_len):
        """``clflush`` the cache lines holding a freshly written cell
        (the record must be durable before its commit mark)."""
        self.pm.flush_range(self.base + offset, self._cell_need(payload_len))

    # ------------------------------------------------------------------
    # Header application (commit side)
    # ------------------------------------------------------------------

    def apply_header(self, image, *, persist=False):
        """Overwrite the durable slot header with ``image``.

        Used by slot-header-log checkpointing (and by tests).  With
        ``persist`` the header lines are flushed and fenced.
        """
        self.pm.write(self.base, image)
        if persist:
            self.pm.persist(self.base, len(image))
        self._pending = None

    def publish_header(self, image, *, keep_pending=True):
        """Persist ``image`` as the page's durable header while keeping
        the pending overlay intact.

        Used by copy-on-write defragmentation: the fresh page's durable
        header exposes only the *committed* records (so swapping the
        parent's child pointer to it is crash-safe at any instant),
        while the transaction continues to see its full pending view.
        """
        self.pm.write(self.base, image)
        self.pm.persist(self.base, len(image))
        self._floor = max(self._floor, len(image))
        if not keep_pending:
            self._pending = None

    def commit_pending_inplace(self, rtm, *, max_retries=None, fallback=None):
        """The paper's in-place commit: one RTM transaction stores the
        whole pending header, then a single flush + fence persist it.

        Requires the header to fit the RTM write-set limit (one cache
        line), which ``header_capacity=28`` guarantees for leaves.

        ``max_retries``/``fallback`` implement the paper's alternative
        fallback policy: after that many transient aborts, ``fallback``
        runs instead (e.g. slot-header logging) and its result is
        returned; the pending header is left intact for it.
        """
        image = self.pending_header_image()
        sentinel = object()
        result = rtm.execute(
            lambda txn: txn.write(self.base, image),
            max_retries=max_retries,
            fallback=(lambda: sentinel) if fallback is not None else None,
        )
        if result is sentinel:
            return fallback()
        self.pm.persist(self.base, len(image))
        self._pending = None
        return None

    # ------------------------------------------------------------------
    # Free list (reconstructible; never needs to be failure-atomic)
    # ------------------------------------------------------------------

    def reclaim_cell(self, offset):
        """Add the (dead) cell at ``offset`` to the free list.

        Called after commit/checkpoint for cells dropped by updates and
        deletes.  Not flushed: the list is reconstructible.
        """
        self._push_chunk(offset, self.cell_allocated_size(offset))

    def rebuild_free_list(self):
        """Recompute the free list from the record offset array
        (Section 4.3: gaps between live cells in the content area)."""
        live = sorted(
            (offset, self.cell_allocated_size(offset)) for offset in self.slots()
        )
        self._set_freelist_head(0)
        cursor = self.content_start
        for offset, size in live:
            if offset > cursor:
                self._write_chunk_sorted(cursor, offset - cursor)
            cursor = max(cursor, offset + size)
        if self.page_size > cursor:
            self._write_chunk_sorted(cursor, self.page_size - cursor)

    def free_list_consistent(self):
        """Does the free list account for exactly the dead bytes of the
        content area?  (The paper's lazy consistency check.)"""
        live = sum(self.cell_allocated_size(offset) for offset in self.slots())
        dead = (self.page_size - self.content_start) - live
        chunk_total = sum(size for _, size in self.free_chunks())
        return chunk_total == dead

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _cell_need(self, payload_len):
        """Allocation size for a cell on this page (alignment-aware)."""
        align = self.cell_align
        raw = CELL_HEADER_SIZE + payload_len
        return max(_MIN_CHUNK, (raw + align - 1) // align * align)

    def _allocate_cell(self, payload):
        """Write a cell for ``payload`` into free space; return offset."""
        pending = self._pending
        need = self._cell_need(len(payload))
        max_payload = self.page_size - FIXED_HEADER_SIZE - SLOT_SIZE - CELL_HEADER_SIZE
        if len(payload) > max_payload:
            raise RecordTooLargeError(
                "%d-byte record exceeds page capacity %d" % (len(payload), max_payload)
            )
        header_end = max(self.header_end(pending.nrecords + 1), self._floor)
        # 1. first-fit from the free list (SQLite checks freeblocks
        # before consuming the gap, which keeps content_start high and
        # the offset array free to grow) — allowed only if the array
        # still has room for one more slot.
        if header_end <= pending.content_start:
            chunk = self._pop_chunk(need)
            if chunk is not None:
                offset, allocated = chunk
                self._write_cell(offset, payload, allocated)
                return offset
        # 2. contiguous free space between offset array and content area
        if pending.content_start - need >= header_end:
            offset = pending.content_start - need
            pending.content_start = offset
            self._write_cell(offset, payload, need)
            return offset
        if self.total_free() >= need + SLOT_SIZE:
            raise PageFullError(
                "no contiguous chunk for %d bytes" % need, needs_defrag=True
            )
        raise PageFullError("page full (%d bytes requested)" % need)

    def _write_cell(self, offset, payload, allocated):
        self.pm.write_u16(self.base + offset, len(payload))
        self.pm.write_u16(self.base + offset + 2, allocated)
        self.pm.write(self.base + offset + CELL_HEADER_SIZE, payload)

    def _pop_chunk(self, need):
        """First-fit allocation from the free list; splits remainders."""
        prev = None
        offset = self.freelist_head
        guard = 0
        while offset and guard < self.page_size:
            guard += 1
            size = self.pm.read_u16(self.base + offset)
            nxt = self.pm.read_u16(self.base + offset + 2)
            if size >= need:
                remainder = size - need
                if remainder >= _MIN_CHUNK:
                    rem_off = offset + need
                    self.pm.write_u16(self.base + rem_off, remainder)
                    self.pm.write_u16(self.base + rem_off + 2, nxt)
                    self._relink(prev, rem_off)
                    return offset, need
                self._relink(prev, nxt)
                return offset, size  # remainder absorbed into the cell
            prev = offset
            offset = nxt
        return None

    def _push_chunk(self, offset, size):
        self.pm.write_u16(self.base + offset, size)
        self.pm.write_u16(self.base + offset + 2, self.freelist_head)
        self._set_freelist_head(offset)

    def _write_chunk_sorted(self, offset, size):
        """Append a chunk during rebuild (called in ascending-offset
        order, so pushing keeps the list reverse-sorted — fine)."""
        self._push_chunk(offset, size)

    def _relink(self, prev, target):
        if prev is None:
            self._set_freelist_head(target)
        else:
            self.pm.write_u16(self.base + prev + 2, target)

    def _set_freelist_head(self, offset):
        if self._pending is not None:
            self._pending.freelist_head = offset
        self.pm.write_u16(self.base + _OFF_FREELIST, offset)

    def _decode(self, image):
        count = (len(image) - FIXED_HEADER_SIZE) // SLOT_SIZE
        offsets = list(
            _struct.unpack_from("<%dH" % count, image, FIXED_HEADER_SIZE)
        )
        return _PendingHeader(
            page_type=image[_OFF_TYPE],
            flags=image[_OFF_FLAGS],
            content_start=int.from_bytes(image[4:6], "little"),
            freelist_head=int.from_bytes(image[6:8], "little"),
            offsets=offsets,
        )

    def _encode(self, header):
        return encode_header(
            header.page_type,
            header.flags,
            header.content_start,
            header.freelist_head,
            header.offsets,
        )


def encode_header(page_type, flags, content_start, freelist_head, offsets):
    """Serialise a slot header (fixed 8 bytes + record offset array)."""
    return _struct.pack(
        "<BBHHH%dH" % len(offsets),
        page_type,
        flags,
        len(offsets),
        content_start,
        freelist_head,
        *offsets,
    )


def _cell_size(payload_len):
    """Nominal allocated size of a cell: 4-byte header + payload,
    rounded up to keep u16 alignment (a cell that swallowed a chunk
    remainder records its larger true size in its header)."""
    return max(_MIN_CHUNK, (CELL_HEADER_SIZE + payload_len + 1) // 2 * 2)
