"""Copy-on-write defragmentation (paper Section 4.3).

Failure-atomic slotted paging may never shift committed records within
a page (that would overwrite data a crash might still need), so pages
fragment — and cells made dead by the *current* transaction cannot be
reused in place either.  When compaction would make a record fit, the
page is rewritten copy-on-write: a fresh page is allocated and every
record of the transaction's pending view is copied contiguously.

The fresh page is dual-natured, which is what makes the paper's
*in-place* parent-pointer swap crash-safe:

* its **durable** header lists only the records that were committed in
  the source page — so at any crash instant the fresh page is an exact
  committed-equivalent of the old one, and the parent's child pointer
  may point at either;
* its **pending** overlay carries the transaction's full view
  (including uncommitted inserts), which commits atomically with the
  rest of the transaction through the normal slot-header machinery.
"""

from repro.storage.slotted_page import encode_header


def defragment_into(store, page, *, header_capacity=None):
    """Copy ``page``'s pending-view records contiguously into a fresh
    page and return it.

    The fresh page's durable header is published with the committed
    subset of records; the full view stays pending.  The source page is
    not modified.
    """
    capacity = header_capacity if header_capacity is not None else page.header_capacity
    fresh = store.allocate_page(page.page_type, header_capacity=capacity)
    fresh.begin_pending()  # a page emptied by its transaction copies nothing
    committed = set(page.committed_offsets())
    committed_copies = []
    for slot, src_offset in enumerate(page.slots()):
        payload = page.read_cell(src_offset)
        dst_offset = fresh.pending_insert(slot, payload)
        fresh.flush_record(dst_offset, len(payload))
        if src_offset in committed:
            committed_copies.append(dst_offset)
    image = encode_header(
        page.page_type,
        page.flags,
        fresh.content_start,        # covers every copied cell
        0,                          # free list rebuilt lazily if needed
        committed_copies,
    )
    fresh.publish_header(image)
    return fresh
