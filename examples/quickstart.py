#!/usr/bin/env python3
"""Quickstart: a SQL database on failure-atomic slotted paging.

Opens a database backed by the FAST⁺ engine (in-place commit + slot
header logging) on a simulated persistent-memory arena, runs some SQL,
power-fails the machine mid-transaction, and recovers.

Run:  python examples/quickstart.py
"""

from repro.core import SystemConfig
from repro.db import Database


def main():
    config = SystemConfig(scheme="fastplus")
    db = Database.open(config)

    db.execute("CREATE TABLE notes (id INTEGER PRIMARY KEY, body TEXT)")
    db.execute("INSERT INTO notes VALUES (?, ?)", (1, "persistent memory"))
    db.execute("INSERT INTO notes VALUES (2, 'failure atomic'), (3, 'slotted')")

    print("All notes:")
    for row in db.query("SELECT * FROM notes ORDER BY id"):
        print("  ", row)

    print("Count:", db.execute("SELECT COUNT(*) FROM notes").scalar())

    # An explicit transaction that never commits...
    db.execute("BEGIN")
    db.execute("INSERT INTO notes VALUES (99, 'doomed')")
    print("Inside txn, note 99 visible:",
          db.query("SELECT body FROM notes WHERE id = 99"))

    # ... because the power fails.  Everything volatile is gone; any
    # unflushed data may or may not have reached persistence.
    pm = db.engine.pm
    pm.crash()

    # Re-attach to the same persistent arena: recovery runs.
    recovered = Database.open(config, pm=pm)
    print("After crash + recovery:")
    print("  committed notes:",
          recovered.execute("SELECT COUNT(*) FROM notes").scalar())
    print("  doomed note present:",
          bool(recovered.query("SELECT 1 FROM notes WHERE id = 99")))

    print("Simulated time spent: %.1f us" % (recovered.clock.now_ns / 1000))
    print("Cache-line flushes issued:", recovered.stats.clflushes)


if __name__ == "__main__":
    main()
