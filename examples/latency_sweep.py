#!/usr/bin/env python3
"""A miniature of the paper's Figure 6: how each scheme's insert cost
scales as persistent memory gets slower.

Sweeps the emulated PM read/write latency (the knob the paper drives
through Quartz) and prints the Search / Page Update / Commit breakdown
per scheme.

Run:  python examples/latency_sweep.py
"""

from repro.bench.harness import run_single_inserts


def main():
    print("%-10s %-10s %8s %12s %8s %8s" % (
        "latency", "scheme", "search", "page_update", "commit", "total"))
    for latency in (120, 300, 600, 1200):
        for scheme in ("nvwal", "fast", "fastplus"):
            result = run_single_inserts(
                scheme, ops=600, read_ns=latency, write_ns=latency
            )
            seg = result.segments_us.get
            print("%-10s %-10s %8.2f %12.2f %8.2f %8.2f" % (
                "%d ns" % latency, scheme,
                seg("search", 0.0), seg("page_update", 0.0),
                seg("commit", 0.0), result.op_us,
            ))
        print()
    print("FAST+ commits single-record transactions with one atomic "
          "cache-line write, so its commit cost barely moves while "
          "NVWAL pays differential logging + heap + WAL-index work "
          "on every commit.")


if __name__ == "__main__":
    main()
