#!/usr/bin/env python3
"""The paper's motivating mobile workload: single-insert transactions.

"In Android applications, it is known that most write transactions
insert just a single data item into the SQLite database as if it is a
flat file interface" (paper Section 3.2).  For exactly this pattern
the in-place commit is optimal: one record write + one atomic slot
header store.

This example builds a small key-value preference store on each engine
and compares the per-operation cost and persistence traffic.

Run:  python examples/android_kvstore.py
"""

from repro.bench.harness import build_config
from repro.core import open_engine


class PreferenceStore:
    """A flat key-value API like Android's SharedPreferences."""

    def __init__(self, engine):
        self.engine = engine

    def put(self, key, value):
        self.engine.insert(key.encode(), value.encode(), replace=True)

    def get(self, key, default=None):
        value = self.engine.search(key.encode())
        return default if value is None else value.decode()

    def remove(self, key):
        return self.engine.delete(key.encode())


def drive(store, n):
    for i in range(n):
        store.put("setting.%04d" % i, "value-%d" % i)
    for i in range(0, n, 7):
        store.put("setting.%04d" % i, "updated-%d" % i)  # rewrites
    assert store.get("setting.0008") == "value-8"
    assert store.get("setting.0014") == "updated-14"
    assert store.get("missing", "fallback") == "fallback"


def main():
    n = 1500
    print("%-10s %12s %14s %12s %10s" % (
        "scheme", "us/op", "flushes/op", "fences/op", "RTM commits"))
    for scheme in ("nvwal", "fast", "fastplus"):
        engine = open_engine(build_config(scheme, ops=2 * n), scheme=scheme)
        store = PreferenceStore(engine)
        snapshot = engine.clock.snapshot()
        stats = engine.stats.snapshot()
        drive(store, n)
        ops = n + n // 7 + 1
        elapsed, _ = engine.clock.since(snapshot)
        delta = engine.stats.since(stats)
        print("%-10s %12.2f %14.2f %12.2f %10d" % (
            scheme,
            elapsed / ops / 1000.0,
            delta.clflushes / ops,
            delta.fences / ops,
            delta.rtm_commits,
        ))
    print("\nFAST+ commits almost every preference write with a single "
          "atomic slot-header store (the RTM commit count ~= the ops).")


if __name__ == "__main__":
    main()
