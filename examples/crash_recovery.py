#!/usr/bin/env python3
"""Failure atomicity under systematic power failures.

Crashes each engine at every (sampled) memory event of a workload —
stores, flushes, fences — with a randomized subset of unflushed data
surviving, then recovers and checks the ACID invariants of the paper's
Section 4.4.  The naive in-place engine demonstrates why the paper's
machinery exists: without logging or an atomic commit its slot headers
tear.

Run:  python examples/crash_recovery.py
"""

from repro.core import SystemConfig
from repro.testing import crash_points_in, run_crash_sweep

WORKLOAD = (
    [("insert", b"user:%04d" % i, b"profile-%04d" % i) for i in range(12)]
    + [("delete", b"user:0003", None),
       ("insert", b"user:0007", b"profile-rewritten")]
)


def config(granularity):
    return SystemConfig(
        npages=128, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
        atomic_granularity=granularity,
    )


def main():
    print("Workload: %d single-op transactions (inserts, a delete, "
          "an overwrite)\n" % len(WORKLOAD))
    print("%-10s %14s %14s %12s  %s" % (
        "scheme", "atomic write", "crash points", "violations", "verdict"))
    cases = (
        ("fast", 8), ("nvwal", 8),
        ("fastplus", 64), ("fastplus", 8),
        ("naive", 8),
    )
    for scheme, granularity in cases:
        cfg = config(granularity)
        total = crash_points_in(scheme, WORKLOAD, config=cfg)
        failures = run_crash_sweep(scheme, WORKLOAD, config=cfg, stride=3)
        verdict = "survives every crash" if not failures else "CORRUPTS"
        print("%-10s %11d B %14d %12d  %s" % (
            scheme, granularity, total, len(failures), verdict))
        for budget, result in failures[:2]:
            print("             e.g. crash @%d: %s" % (
                budget, result.violations[0][:80]))
    print("\nFAST needs only 8-byte atomic writes; FAST+'s in-place "
          "commit additionally needs failure-atomic cache-line "
          "writeback (paper Section 3.2) — and naive in-place paging "
          "is unsafe, which is the paper's whole point.")


if __name__ == "__main__":
    main()
