#!/usr/bin/env python3
"""A persistent session store on the hash index.

The paper notes its slotted-page optimisation applies "not only for
B+-trees ... but also for other hash-based indexes" (Section 2.2).
This example builds a web-style session store — random tokens, point
lookups, no range queries — on ``repro.hashindex`` and shows that it
inherits the same failure atomicity as the B-tree engines, including
surviving a mid-transaction power failure.

Run:  python examples/hash_session_store.py
"""

import random

from repro.core import SystemConfig, engine_class, open_engine
from repro.hashindex import HashIndex

SESSIONS_SLOT = 1


def main():
    config = SystemConfig(scheme="fastplus", npages=2048)
    engine = open_engine(config)
    sessions = HashIndex(root_slot=SESSIONS_SLOT, nbuckets=64)
    with engine.transaction() as txn:
        sessions.create(txn.ctx)

    rng = random.Random(42)
    tokens = ["%032x" % rng.getrandbits(128) for _ in range(500)]

    snapshot = engine.clock.snapshot()
    for i, token in enumerate(tokens):
        with engine.transaction() as txn:
            sessions.insert(
                txn.ctx, token.encode(),
                b'{"user": %d, "ttl": 3600}' % i,
            )
    elapsed, _ = engine.clock.since(snapshot)
    print("stored %d sessions, %.2f us/put (simulated)"
          % (len(tokens), elapsed / len(tokens) / 1000))

    view = engine.read_view()
    hits = sum(
        1 for token in rng.sample(tokens, 100)
        if sessions.search(view, token.encode()) is not None
    )
    print("100 random lookups, %d hits" % hits)

    # Expire a batch of sessions atomically; the power fails mid-way.
    txn = engine.transaction()
    for token in tokens[:50]:
        sessions.delete(txn.ctx, token.encode())
    engine.pm.crash()  # never committed

    engine = engine_class(config.scheme).attach(config, engine.pm)
    view = engine.read_view()
    print("after crash + recovery: %d sessions (expiry rolled back: %s)"
          % (sessions.count(view),
             sessions.search(view, tokens[0].encode()) is not None))

    # Do it again, committed this time.
    with engine.transaction() as txn:
        for token in tokens[:50]:
            sessions.delete(txn.ctx, token.encode())
    print("after committed expiry: %d sessions" % sessions.count(engine.read_view()))
    assert sessions.verify(engine.read_view()) == 450


if __name__ == "__main__":
    main()
